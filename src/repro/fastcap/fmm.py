"""Multipole-accelerated matrix-vector product.

The collocation BEM matrix ``P`` has entries
``P_ij = (1/4 pi eps) \\int_j ds' / |r_i - r'|`` (potential at the centroid of
panel ``i`` due to a unit charge density on panel ``j``).  Storing ``P``
densely costs ``O(N^2)`` memory; FASTCAP instead evaluates ``P x`` on the fly:

* *near-field* interactions (clusters that fail the multipole acceptance
  criterion) are computed exactly with the closed-form rectangle potential
  and stored once as small dense blocks;
* *far-field* interactions are approximated by evaluating the source
  cluster's Cartesian multipole expansion (monopole + dipole + quadrupole)
  at the target panel centroids.

The acceptance criterion is the classic Barnes-Hut style ratio test
``(r_source + r_target) / distance < theta``; ``theta`` trades accuracy for
speed exactly like FASTCAP's expansion order does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.fastcap.octree import ClusterNode, ClusterTree
from repro.geometry.panel import Panel
from repro.greens.collocation import collocation_potential

__all__ = ["MultipoleOperator"]


@dataclass
class _NearBlock:
    """One exactly-evaluated near-field interaction block."""

    target_indices: np.ndarray
    source_indices: np.ndarray
    block: np.ndarray


@dataclass
class _FarInteraction:
    """One far-field interaction: a source cluster seen by a target leaf."""

    target_leaf: int
    source_node: ClusterNode


class MultipoleOperator:
    """The multipole-accelerated collocation operator ``x -> P x``.

    Parameters
    ----------
    panels:
        Discretisation panels.
    permittivity:
        Absolute permittivity of the medium.
    theta:
        Multipole acceptance criterion; smaller is more accurate and slower.
    max_leaf_size:
        Leaf size of the cluster tree.
    expansion_order:
        Highest multipole moment retained in the far-field evaluation:
        ``0`` monopole only, ``1`` adds the dipole, ``2`` (default) adds the
        quadrupole — the FASTCAP-style accuracy/speed knob alongside
        ``theta``.
    """

    def __init__(
        self,
        panels: list[Panel],
        permittivity: float,
        theta: float = 0.5,
        max_leaf_size: int = 32,
        expansion_order: int = 2,
    ):
        if not (0.0 < theta < 1.0):
            raise ValueError(f"theta must be in (0, 1), got {theta}")
        if permittivity <= 0.0:
            raise ValueError(f"permittivity must be positive, got {permittivity}")
        if expansion_order not in (0, 1, 2):
            raise ValueError(
                f"expansion_order must be 0, 1 or 2, got {expansion_order}"
            )
        self.panels = list(panels)
        self.permittivity = float(permittivity)
        self.theta = float(theta)
        self.expansion_order = int(expansion_order)
        self.tree = ClusterTree(self.panels, max_leaf_size=max_leaf_size)
        self.prefactor = 1.0 / (4.0 * math.pi * self.permittivity)
        self.areas = self.tree.areas
        self.centroids = self.tree.centroids
        self.near_blocks: list[_NearBlock] = []
        self.far_interactions: list[_FarInteraction] = []
        self._build_interaction_lists()

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """System dimension (number of panels)."""
        return len(self.panels)

    @property
    def near_memory_bytes(self) -> int:
        """Memory of the stored near-field blocks (the dominant storage)."""
        return int(sum(block.block.nbytes for block in self.near_blocks))

    @property
    def memory_bytes(self) -> int:
        """Total auxiliary memory: near blocks plus tree moments."""
        moments = self.tree.num_nodes * (1 + 3 + 9) * 8
        return self.near_memory_bytes + int(moments)

    def diagonal(self) -> np.ndarray:
        """Diagonal of ``P`` (used as the Jacobi preconditioner for GMRES)."""
        diag = np.empty(self.size)
        for target_index, panel in enumerate(self.panels):
            diag[target_index] = self.prefactor * collocation_potential(
                panel, panel.centroid[None, :]
            )[0]
        return diag

    # ------------------------------------------------------------------
    def _build_interaction_lists(self) -> None:
        """Dual traversal: classify every (target leaf, source cluster) pair."""
        for leaf_index, leaf in enumerate(self.tree.leaves):
            near_sources: list[np.ndarray] = []
            self._classify(leaf_index, leaf, self.tree.root, near_sources)
            if near_sources:
                source_indices = np.concatenate(near_sources)
                self._add_near_block(leaf, source_indices)

    def _classify(
        self,
        leaf_index: int,
        leaf: ClusterNode,
        source: ClusterNode,
        near_sources: list[np.ndarray],
    ) -> None:
        distance = float(np.linalg.norm(source.center - leaf.center))
        if distance > 0.0 and (source.radius + leaf.radius) / distance < self.theta:
            self.far_interactions.append(_FarInteraction(target_leaf=leaf_index, source_node=source))
            return
        if source.is_leaf:
            near_sources.append(source.indices)
            return
        for child in source.children:
            self._classify(leaf_index, leaf, child, near_sources)

    def _add_near_block(self, leaf: ClusterNode, source_indices: np.ndarray) -> None:
        """Exact near-field block: closed-form potentials of source panels."""
        targets = leaf.indices
        block = np.empty((targets.size, source_indices.size))
        target_points = self.centroids[targets]
        for column, source_index in enumerate(source_indices):
            block[:, column] = collocation_potential(self.panels[int(source_index)], target_points)
        self.near_blocks.append(
            _NearBlock(
                target_indices=targets,
                source_indices=source_indices,
                block=self.prefactor * block,
            )
        )

    # ------------------------------------------------------------------
    def matvec(self, densities: np.ndarray) -> np.ndarray:
        """Apply the operator to a charge-density vector."""
        densities = np.asarray(densities, dtype=float).ravel()
        if densities.size != self.size:
            raise ValueError(f"expected vector of size {self.size}, got {densities.size}")
        potentials = np.zeros(self.size)

        # Near field: exact blocks.
        for near in self.near_blocks:
            potentials[near.target_indices] += near.block @ densities[near.source_indices]

        self._add_far_field(densities, potentials)
        return potentials

    def matmat(self, densities: np.ndarray) -> np.ndarray:
        """Apply the operator to a block of charge-density columns.

        The dominant near-field blocks are traversed ONCE and applied to
        every column together (the multi-right-hand-side sharing the
        blocked GMRES relies on); the far-field multipole pass keeps
        per-column moments on the tree nodes, so it runs once per column.
        """
        densities = np.asarray(densities, dtype=float)
        if densities.ndim == 1:
            return self.matvec(densities)
        if densities.shape[0] != self.size:
            raise ValueError(
                f"expected {self.size} rows, got {densities.shape[0]}"
            )
        potentials = np.zeros_like(densities)
        for near in self.near_blocks:
            potentials[near.target_indices] += near.block @ densities[near.source_indices]
        for column in range(densities.shape[1]):
            self._add_far_field(densities[:, column], potentials[:, column])
        return potentials

    def _add_far_field(self, densities: np.ndarray, potentials: np.ndarray) -> None:
        """Accumulate the far-field multipole contribution of one column.

        Multipole expansions of total charges; only the moment levels the
        configured expansion order reads are computed.
        """
        charges = densities * self.areas
        self.tree.compute_moments(charges, order=self.expansion_order)
        for interaction in self.far_interactions:
            leaf = self.tree.leaves[interaction.target_leaf]
            node = interaction.source_node
            targets = leaf.indices
            rel = self.centroids[targets] - node.center
            dist2 = np.sum(rel * rel, axis=1)
            dist = np.sqrt(dist2)
            inv_dist = 1.0 / dist
            value = node.monopole * inv_dist
            if self.expansion_order >= 1:
                value += (rel @ node.dipole) / (dist2 * dist)
            if self.expansion_order >= 2:
                # Quadrupole: 0.5 * S_ab (3 r_a r_b - r^2 delta_ab) / r^5.
                quad = np.einsum("na,ab,nb->n", rel, node.quadrupole, rel)
                trace = np.trace(node.quadrupole)
                value += 0.5 * (3.0 * quad - dist2 * trace) / (dist2 * dist2 * dist)
            potentials[targets] += self.prefactor * value

    # ------------------------------------------------------------------
    def dense_reference(self) -> np.ndarray:
        """Densely assembled collocation matrix (tests only; O(N^2) memory)."""
        matrix = np.empty((self.size, self.size))
        for column, panel in enumerate(self.panels):
            matrix[:, column] = self.prefactor * collocation_potential(panel, self.centroids)
        return matrix
