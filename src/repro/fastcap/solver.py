"""FASTCAP-like capacitance extraction driver.

Discretises the layout with edge-graded piecewise-constant panels, builds the
multipole-accelerated collocation operator, solves one GMRES system per
conductor and assembles the capacitance matrix -- the same pipeline as the
original FASTCAP program [4], with timing and memory bookkeeping so the
Table 2 comparison can be regenerated.

The solver returns the unified :class:`repro.core.results.ExtractionResult`
(with ``iterations`` populated); the historical ``FastCapSolution`` name is
retained only as a deprecated alias of that type.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.core.results import ExtractionResult
from repro.fastcap.fmm import MultipoleOperator
from repro.geometry.discretize import discretize_layout_graded
from repro.geometry.layout import Layout
from repro.geometry.panel import Panel
from repro.parallel.timing import SolverTimer
from repro.solver.iterative import gmres_solve

__all__ = ["FastCapSolver"]


def __getattr__(name: str):
    # Deprecated alias — the FASTCAP-like solver now returns the unified result.
    if name == "FastCapSolution":
        warnings.warn(
            "FastCapSolution is deprecated; the solver returns the unified "
            "repro.core.results.ExtractionResult",
            DeprecationWarning,
            stacklevel=2,
        )
        return ExtractionResult
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class FastCapSolver:
    """Multipole-accelerated PWC collocation solver.

    Parameters
    ----------
    cells_per_edge, grading_ratio, max_edge:
        Discretisation controls (see
        :func:`repro.geometry.discretize.discretize_layout_graded`).
    theta:
        Multipole acceptance criterion of the far-field expansion.
    expansion_order:
        Highest multipole moment of the far-field evaluation (0-2, see
        :class:`~repro.fastcap.fmm.MultipoleOperator`).
    max_leaf_size:
        Cluster-tree leaf size.
    tolerance:
        GMRES relative residual tolerance.
    block_size:
        Conductor columns per blocked-GMRES traversal group (``None`` =
        all conductors iterate in one lockstep block sharing each
        near-field traversal, ``1`` = one GMRES solve per conductor).
    """

    def __init__(
        self,
        cells_per_edge: int = 3,
        grading_ratio: float = 1.5,
        max_edge: float | None = None,
        theta: float = 0.5,
        max_leaf_size: int = 32,
        tolerance: float = 1e-5,
        max_iterations: int = 300,
        expansion_order: int = 2,
        block_size: int | None = None,
    ):
        self.cells_per_edge = int(cells_per_edge)
        self.grading_ratio = float(grading_ratio)
        self.max_edge = max_edge
        self.theta = float(theta)
        self.max_leaf_size = int(max_leaf_size)
        self.tolerance = float(tolerance)
        self.max_iterations = int(max_iterations)
        self.expansion_order = int(expansion_order)
        self.block_size = None if block_size is None else int(block_size)

    # ------------------------------------------------------------------
    def discretize(self, layout: Layout) -> list[Panel]:
        """Edge-graded panel discretisation of the layout."""
        return discretize_layout_graded(
            layout,
            cells_per_edge=self.cells_per_edge,
            ratio=self.grading_ratio,
            max_edge=self.max_edge,
        )

    def solve_panels(self, layout: Layout, panels: list[Panel]) -> ExtractionResult:
        """Run the extraction on an explicit panel discretisation."""
        timer = SolverTimer()
        with timer.setup():
            operator = MultipoleOperator(
                panels,
                layout.permittivity,
                theta=self.theta,
                max_leaf_size=self.max_leaf_size,
                expansion_order=self.expansion_order,
            )
            diagonal = operator.diagonal()

        conductor_of_panel = np.asarray([p.conductor for p in panels], dtype=np.intp)
        areas = np.asarray([p.area for p in panels])
        num_conductors = layout.num_conductors

        with timer.solve():
            rhs = np.zeros((len(panels), num_conductors))
            for k in range(num_conductors):
                rhs[conductor_of_panel == k, k] = 1.0
            densities, stats = gmres_solve(
                operator.matvec,
                rhs,
                size=len(panels),
                tolerance=self.tolerance,
                max_iterations=self.max_iterations,
                diagonal=diagonal,
                matmat=operator.matmat,
                block_size=self.block_size,
            )
            # C[k, l] = total charge on conductor k when conductor l is at 1 V.
            capacitance = np.zeros((num_conductors, num_conductors))
            for k in range(num_conductors):
                mask = conductor_of_panel == k
                capacitance[k, :] = (areas[mask, None] * densities[mask, :]).sum(axis=0)
            capacitance = 0.5 * (capacitance + capacitance.T)

        return ExtractionResult(
            capacitance=capacitance,
            conductor_names=list(layout.names),
            setup_seconds=timer.setup_seconds,
            solve_seconds=timer.solve_seconds,
            memory_bytes=operator.memory_bytes,
            backend="fastcap",
            num_unknowns=len(panels),
            iterations=stats,
            charges=densities,
            metadata={
                "num_panels": len(panels),
                "theta": self.theta,
                "expansion_order": self.expansion_order,
                "solver_mode": stats.mode,
                "operator_traversals": stats.operator_traversals,
                "tree_depth": operator.tree.depth,
                "num_leaves": len(operator.tree.leaves),
                "far_interactions": len(operator.far_interactions),
            },
        )

    def solve(self, layout: Layout) -> ExtractionResult:
        """Discretise and extract the layout."""
        return self.solve_panels(layout, self.discretize(layout))
