"""FASTCAP-like multipole-accelerated capacitance solver (paper reference [4]).

FASTCAP solves the piecewise-constant collocation BEM with a Krylov
iterative method whose matrix-vector product is approximated by a
hierarchical multipole expansion, avoiding the dense matrix entirely.  This
package implements that architecture from scratch:

* :mod:`repro.fastcap.octree` -- hierarchical spatial clustering of panels
  with Cartesian multipole moments (monopole, dipole, quadrupole).
* :mod:`repro.fastcap.fmm` -- the multipole-accelerated matrix-vector
  product: exact near-field interactions (precomputed sparse blocks) plus
  far-field multipole evaluations gated by a multipole acceptance criterion.
* :mod:`repro.fastcap.solver` -- panel discretisation, GMRES solve per
  conductor and capacitance assembly, with the timing/memory bookkeeping the
  Table 2 comparison needs.

The expansion order and acceptance criterion reproduce FASTCAP's behaviour
(a few-percent accuracy at a fraction of the dense cost); see DESIGN.md for
the exact substitutions.
"""

from repro.fastcap.octree import ClusterTree, ClusterNode
from repro.fastcap.fmm import MultipoleOperator
from repro.fastcap.solver import FastCapSolver

# ``FastCapSolution`` is retired as a public type: the solver returns the
# unified ``repro.core.results.ExtractionResult``.  The alias remains
# importable from ``repro.fastcap.solver`` for legacy code.
__all__ = [
    "ClusterTree",
    "ClusterNode",
    "MultipoleOperator",
    "FastCapSolver",
]
