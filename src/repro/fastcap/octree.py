"""Hierarchical clustering (octree) of panels with Cartesian multipole moments.

Panels are clustered by recursive bisection of their centroid bounding box
into octants.  Each node stores the indices of its panels, its geometric
centre and radius, and -- during the upward pass of the matrix-vector
product -- the Cartesian multipole moments of the charge it contains:

* monopole  ``Q     = sum_j q_j``
* dipole    ``D_a   = sum_j q_j (r_j - c)_a``
* quadrupole ``S_ab = sum_j q_j (r_j - c)_a (r_j - c)_b``

where ``q_j`` is the panel charge and ``c`` the node centre.  The far-field
potential of the node is evaluated from these moments in
:mod:`repro.fastcap.fmm`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.geometry.panel import Panel

__all__ = ["ClusterNode", "ClusterTree"]


@dataclass
class ClusterNode:
    """One node of the cluster tree."""

    indices: np.ndarray
    center: np.ndarray
    radius: float
    children: list["ClusterNode"] = field(default_factory=list)
    # Multipole moments (filled by the upward pass).
    monopole: float = 0.0
    dipole: np.ndarray = field(default_factory=lambda: np.zeros(3))
    quadrupole: np.ndarray = field(default_factory=lambda: np.zeros((3, 3)))

    @property
    def is_leaf(self) -> bool:
        """Whether the node has no children."""
        return not self.children

    @property
    def size(self) -> int:
        """Number of panels contained in the node."""
        return int(self.indices.size)


class ClusterTree:
    """Octree over panel centroids.

    Parameters
    ----------
    panels:
        The discretisation panels.
    max_leaf_size:
        Nodes with at most this many panels are not subdivided further.
    max_depth:
        Hard cap on the recursion depth.
    """

    def __init__(self, panels: Sequence[Panel], max_leaf_size: int = 32, max_depth: int = 12):
        if max_leaf_size < 1:
            raise ValueError(f"max_leaf_size must be >= 1, got {max_leaf_size}")
        self.panels = list(panels)
        if not self.panels:
            raise ValueError("cannot build a cluster tree without panels")
        self.max_leaf_size = int(max_leaf_size)
        self.max_depth = int(max_depth)
        self.centroids = np.array([p.centroid for p in self.panels])
        self.areas = np.array([p.area for p in self.panels])
        # Panel radius: half diagonal, used to keep the acceptance criterion
        # conservative for panels that stick out of their cluster.
        self.panel_radii = 0.5 * np.array([p.diagonal for p in self.panels])
        self.root = self._build(np.arange(len(self.panels), dtype=np.intp), depth=0)
        self.leaves = [node for node in self.iter_nodes() if node.is_leaf]

    # ------------------------------------------------------------------
    def _build(self, indices: np.ndarray, depth: int) -> ClusterNode:
        """Recursively build the tree."""
        points = self.centroids[indices]
        lo = points.min(axis=0)
        hi = points.max(axis=0)
        center = 0.5 * (lo + hi)
        radius = float(
            np.max(np.linalg.norm(points - center, axis=1) + self.panel_radii[indices])
        )
        node = ClusterNode(indices=indices, center=center, radius=radius)
        if indices.size <= self.max_leaf_size or depth >= self.max_depth:
            return node
        # Split into octants around the centre; drop empty octants.
        octant = (
            (points[:, 0] > center[0]).astype(np.intp)
            + 2 * (points[:, 1] > center[1]).astype(np.intp)
            + 4 * (points[:, 2] > center[2]).astype(np.intp)
        )
        for code in range(8):
            mask = octant == code
            if not np.any(mask):
                continue
            child_indices = indices[mask]
            if child_indices.size == indices.size:
                # Degenerate split (all centroids coincide): stop here.
                return node
            node.children.append(self._build(child_indices, depth + 1))
        return node

    # ------------------------------------------------------------------
    def iter_nodes(self):
        """Yield every node of the tree (pre-order)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    @property
    def num_nodes(self) -> int:
        """Total number of tree nodes."""
        return sum(1 for _ in self.iter_nodes())

    @property
    def depth(self) -> int:
        """Maximum depth of the tree."""

        def _depth(node: ClusterNode) -> int:
            if node.is_leaf:
                return 1
            return 1 + max(_depth(child) for child in node.children)

        return _depth(self.root)

    # ------------------------------------------------------------------
    def compute_moments(self, charges: np.ndarray, order: int = 2) -> None:
        """Upward pass: fill the multipole moments for given panel charges.

        ``charges`` are total panel charges (charge density times area).
        Moments are accumulated bottom-up so every node sums its children's
        moments shifted to its own centre.  ``order`` is the highest moment
        computed (0 monopole, 1 dipole, 2 quadrupole); levels above it keep
        their previous values and must not be read.
        """
        charges = np.asarray(charges, dtype=float)
        if charges.shape != (len(self.panels),):
            raise ValueError(
                f"charges must have shape ({len(self.panels)},), got {charges.shape}"
            )
        if order not in (0, 1, 2):
            raise ValueError(f"order must be 0, 1 or 2, got {order}")
        self._moments_recursive(self.root, charges, order)

    def _moments_recursive(self, node: ClusterNode, charges: np.ndarray, order: int) -> None:
        if node.is_leaf:
            q = charges[node.indices]
            node.monopole = float(q.sum())
            if order >= 1:
                rel = self.centroids[node.indices] - node.center
                node.dipole = rel.T @ q
                if order >= 2:
                    node.quadrupole = (rel * q[:, None]).T @ rel
            return
        node.monopole = 0.0
        node.dipole = np.zeros(3)
        node.quadrupole = np.zeros((3, 3))
        for child in node.children:
            self._moments_recursive(child, charges, order)
            shift = child.center - node.center
            node.monopole += child.monopole
            if order >= 1:
                node.dipole += child.dipole + child.monopole * shift
            if order >= 2:
                node.quadrupole += (
                    child.quadrupole
                    + np.outer(child.dipole, shift)
                    + np.outer(shift, child.dipole)
                    + child.monopole * np.outer(shift, shift)
                )
