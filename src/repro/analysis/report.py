"""Plain-text table formatting for the experiment drivers and benchmarks."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str | None = None,
) -> str:
    """Format a list of rows as an aligned plain-text table.

    Every cell is converted with ``str``; column widths are derived from the
    longest cell (header included).
    """
    headers = [str(h) for h in headers]
    text_rows = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in text_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)
