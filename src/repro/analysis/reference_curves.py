"""Published parallel-efficiency curves of the prior parallel BEM solvers.

Figure 8 of the paper compares the efficiency of this work against two prior
parallel capacitance extractors, using the best efficiencies reported in
their original publications:

* the parallel pre-corrected FFT program of Aluru, Nadkarni and White
  (DAC 1996, paper reference [1]), whose efficiency "drops significantly to
  42 % at 8 cores";
* the parallel fast-multipole program of Yuan and Banerjee (JPDC 2001,
  paper reference [7]), which drops to about 65 % at 8 cores.

Those papers are not reproduced line by line here; instead the efficiency
data quoted in the DAC 2011 paper (anchored at 100 % for one node and the
8-core values above, with the intermediate points following the Amdahl
curve through those anchors) is provided for the Figure 8 comparison, and
our own pFFT/FMM baselines (:mod:`repro.pfft`, :mod:`repro.fastcap`) provide
independently *simulated* curves with the same qualitative behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.efficiency import amdahl_efficiency

__all__ = [
    "parallel_pfft_efficiency",
    "parallel_fmm_efficiency",
    "published_reference_curves",
]

#: Amdahl serial fraction reproducing the 42 % efficiency at 8 cores quoted
#: for the parallel pre-corrected FFT program [1].
_PFFT_SERIAL_FRACTION = (1.0 / 0.42 - 1.0) / 7.0

#: Amdahl serial fraction reproducing the 65 % efficiency at 8 cores quoted
#: for the parallel fast multipole program [7].
_FMM_SERIAL_FRACTION = (1.0 / 0.65 - 1.0) / 7.0


def parallel_pfft_efficiency(num_nodes: np.ndarray) -> np.ndarray:
    """Efficiency curve of the parallel pre-corrected FFT baseline [1]."""
    return amdahl_efficiency(np.asarray(num_nodes, dtype=float), _PFFT_SERIAL_FRACTION)


def parallel_fmm_efficiency(num_nodes: np.ndarray) -> np.ndarray:
    """Efficiency curve of the parallel fast multipole baseline [7]."""
    return amdahl_efficiency(np.asarray(num_nodes, dtype=float), _FMM_SERIAL_FRACTION)


def published_reference_curves(max_nodes: int = 10) -> dict[str, np.ndarray]:
    """All Figure 8 reference curves for node counts 1..max_nodes.

    Returns a dictionary with the node axis and one efficiency array per
    prior-work curve.
    """
    if max_nodes < 1:
        raise ValueError(f"max_nodes must be >= 1, got {max_nodes}")
    nodes = np.arange(1, max_nodes + 1)
    return {
        "nodes": nodes,
        "parallel_pfft": parallel_pfft_efficiency(nodes),
        "parallel_fmm": parallel_fmm_efficiency(nodes),
    }
