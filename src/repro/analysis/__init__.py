"""Analysis utilities: scaling metrics, published reference curves, reports."""

from repro.analysis.efficiency import ScalingPoint, ScalingTable, amdahl_efficiency, fit_serial_fraction
from repro.analysis.reference_curves import (
    parallel_fmm_efficiency,
    parallel_pfft_efficiency,
    published_reference_curves,
)
from repro.analysis.report import format_table

__all__ = [
    "ScalingPoint",
    "ScalingTable",
    "amdahl_efficiency",
    "fit_serial_fraction",
    "parallel_fmm_efficiency",
    "parallel_pfft_efficiency",
    "published_reference_curves",
    "format_table",
]
