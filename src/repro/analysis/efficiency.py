"""Speedup and parallel-efficiency bookkeeping (Table 3, Figure 8).

A :class:`ScalingTable` collects the wall-clock time of runs at different
node counts and derives speedup (``T_1 / T_D``) and efficiency
(``speedup / D``), which are exactly the columns of the paper's Table 3 and
the y-axis of Figure 8.  Amdahl-law helpers quantify the serial fraction of
a measured curve, which is how the pFFT/FMM baseline curves are
characterised.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ScalingPoint", "ScalingTable", "amdahl_efficiency", "fit_serial_fraction"]


@dataclass(frozen=True)
class ScalingPoint:
    """One row of a scaling table."""

    num_nodes: int
    total_seconds: float
    speedup: float
    efficiency: float


@dataclass
class ScalingTable:
    """Scaling results of one solver configuration over several node counts."""

    label: str
    points: list[ScalingPoint] = field(default_factory=list)

    # ------------------------------------------------------------------
    @classmethod
    def from_times(cls, label: str, node_counts: list[int], times: list[float]) -> "ScalingTable":
        """Build the table from raw wall-clock times.

        The single-node time is the reference; if no 1-node entry is present
        the smallest node count is used as the baseline (scaled ideally).
        """
        if len(node_counts) != len(times):
            raise ValueError("node_counts and times must have equal lengths")
        if not node_counts:
            raise ValueError("scaling table needs at least one measurement")
        pairs = sorted(zip(node_counts, times))
        base_nodes, base_time = pairs[0]
        reference = base_time * base_nodes  # ideal single-node equivalent
        if base_nodes == 1:
            reference = base_time
        points = []
        for nodes, seconds in pairs:
            if seconds <= 0.0:
                raise ValueError(f"non-positive time {seconds} for {nodes} nodes")
            speedup = reference / seconds
            points.append(
                ScalingPoint(
                    num_nodes=nodes,
                    total_seconds=seconds,
                    speedup=speedup,
                    efficiency=speedup / nodes,
                )
            )
        return cls(label=label, points=points)

    # ------------------------------------------------------------------
    @property
    def node_counts(self) -> list[int]:
        """Node counts in ascending order."""
        return [p.num_nodes for p in self.points]

    @property
    def efficiencies(self) -> list[float]:
        """Efficiencies aligned with :attr:`node_counts`."""
        return [p.efficiency for p in self.points]

    @property
    def speedups(self) -> list[float]:
        """Speedups aligned with :attr:`node_counts`."""
        return [p.speedup for p in self.points]

    def efficiency_at(self, num_nodes: int) -> float:
        """Efficiency at a specific node count."""
        for point in self.points:
            if point.num_nodes == num_nodes:
                return point.efficiency
        raise KeyError(f"no measurement for {num_nodes} nodes in table {self.label!r}")

    def as_dict(self) -> dict:
        """Machine-readable summary (aligned lists, one entry per node count)."""
        return {
            "label": self.label,
            "worker_counts": self.node_counts,
            "total_seconds": [p.total_seconds for p in self.points],
            "speedup": self.speedups,
            "efficiency": self.efficiencies,
        }

    def rows(self) -> list[list[str]]:
        """Formatted rows (nodes, time, speedup, efficiency) for reports."""
        return [
            [
                str(p.num_nodes),
                f"{p.total_seconds:.3f} s",
                f"{p.speedup:.2f}x",
                f"{100.0 * p.efficiency:.0f}%",
            ]
            for p in self.points
        ]


def amdahl_efficiency(num_nodes: np.ndarray, serial_fraction: float) -> np.ndarray:
    """Parallel efficiency predicted by Amdahl's law for a serial fraction."""
    num_nodes = np.asarray(num_nodes, dtype=float)
    if not (0.0 <= serial_fraction <= 1.0):
        raise ValueError(f"serial_fraction must be in [0, 1], got {serial_fraction}")
    speedup = 1.0 / (serial_fraction + (1.0 - serial_fraction) / num_nodes)
    return speedup / num_nodes


def fit_serial_fraction(node_counts: np.ndarray, efficiencies: np.ndarray) -> float:
    """Least-squares fit of the Amdahl serial fraction to measured efficiencies."""
    node_counts = np.asarray(node_counts, dtype=float)
    efficiencies = np.asarray(efficiencies, dtype=float)
    if node_counts.shape != efficiencies.shape or node_counts.size == 0:
        raise ValueError("node_counts and efficiencies must be non-empty and aligned")
    candidates = np.linspace(0.0, 0.5, 2001)
    errors = [
        float(np.sum((amdahl_efficiency(node_counts, s) - efficiencies) ** 2))
        for s in candidates
    ]
    return float(candidates[int(np.argmin(errors))])
