"""Integration of the electrostatic Green's function over rectangular panels.

This package provides the numerical machinery of Sections 2 and 4 of the
paper:

* :mod:`repro.greens.kernels` -- the free-space kernel ``1/(4*pi*eps*r)`` and
  slow reference integrators used for validation.
* :mod:`repro.greens.collocation` -- closed-form potential of a uniformly
  charged rectangle (the "2-D analytical expression" of eq. (13)).
* :mod:`repro.greens.indefinite` -- the 4-fold indefinite integral of the
  kernel (paper eq. (9)) and the exact 4-D Galerkin integral between parallel
  panels obtained from its 16-corner signed sum.
* :mod:`repro.greens.quadrature` -- Gauss-Legendre rules and tensor grids.
* :mod:`repro.greens.policy` -- the approximation-distance policy of
  Section 4.1 that decides which expression level to use per panel pair.
* :mod:`repro.greens.galerkin` -- the panel-pair Galerkin integrator that the
  system-setup step calls for every template pair.
"""

from repro.greens.kernels import FOUR_PI_EPS0, point_kernel
from repro.greens.collocation import (
    collocation_corner,
    collocation_potential,
    collocation_from_deltas,
)
from repro.greens.indefinite import indefinite_integral, galerkin_parallel_rectangles
from repro.greens.quadrature import gauss_legendre, tensor_grid
from repro.greens.policy import ApproximationPolicy, EvaluationLevel
from repro.greens.galerkin import GalerkinIntegrator

__all__ = [
    "FOUR_PI_EPS0",
    "point_kernel",
    "collocation_corner",
    "collocation_potential",
    "collocation_from_deltas",
    "indefinite_integral",
    "galerkin_parallel_rectangles",
    "gauss_legendre",
    "tensor_grid",
    "ApproximationPolicy",
    "EvaluationLevel",
    "GalerkinIntegrator",
]
