"""Electrostatic kernel and slow reference integrators.

The boundary element method for capacitance extraction is built on the
free-space Green's function of the Laplace operator,

.. math::  G(r, r') = \\frac{1}{4 \\pi \\varepsilon \\, \\lVert r - r' \\rVert},

see eq. (1) of the paper.  The closed-form panel integrals in
:mod:`repro.greens.collocation` and :mod:`repro.greens.indefinite` integrate
this kernel analytically; the quadrature-based functions here are slow,
obviously-correct references used by the test-suite and by the adaptive
error studies.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.geometry.layout import VACUUM_PERMITTIVITY
from repro.geometry.panel import Panel
from repro.greens.quadrature import tensor_grid

__all__ = [
    "VACUUM_PERMITTIVITY",
    "FOUR_PI_EPS0",
    "point_kernel",
    "panel_potential_quadrature",
    "panel_pair_quadrature",
]

#: ``4 * pi * eps0`` -- the denominator of the vacuum kernel, in F/m.
FOUR_PI_EPS0 = 4.0 * math.pi * VACUUM_PERMITTIVITY


def point_kernel(r: np.ndarray, r_prime: np.ndarray, permittivity: float = VACUUM_PERMITTIVITY) -> np.ndarray:
    """Evaluate the free-space kernel between two sets of points.

    Parameters
    ----------
    r, r_prime:
        Arrays of shape ``(..., 3)``; broadcast against each other.
    permittivity:
        Absolute permittivity of the medium.

    Returns
    -------
    numpy.ndarray
        ``1 / (4 pi eps |r - r'|)`` with the same broadcast shape as the
        inputs (without the trailing axis).
    """
    diff = np.asarray(r, dtype=float) - np.asarray(r_prime, dtype=float)
    dist = np.sqrt(np.sum(diff * diff, axis=-1))
    return 1.0 / (4.0 * math.pi * permittivity * dist)


def panel_potential_quadrature(
    panel: Panel,
    point: np.ndarray,
    order: int = 24,
    weight: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
) -> float:
    """Potential integral of a (possibly weighted) panel at a point by quadrature.

    Computes ``\\int_panel w(u, v) / |r - r'| ds'`` with an ``order x order``
    Gauss-Legendre rule.  This is a *reference* implementation: accurate for
    well-separated points, slow, and not suitable for nearly singular cases.
    """
    u_nodes, v_nodes, weights = tensor_grid(panel.u_range, panel.v_range, order, order)
    pts = np.empty((u_nodes.size, 3))
    pts[:, panel.normal_axis] = panel.offset
    pts[:, panel.u_axis] = u_nodes
    pts[:, panel.v_axis] = v_nodes
    diff = np.asarray(point, dtype=float)[None, :] - pts
    dist = np.sqrt(np.sum(diff * diff, axis=-1))
    values = 1.0 / dist
    if weight is not None:
        values = values * weight(u_nodes, v_nodes)
    return float(np.sum(weights * values))


def panel_pair_quadrature(
    panel_i: Panel,
    panel_j: Panel,
    order: int = 16,
    weight_i: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
    weight_j: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
) -> float:
    """Reference Galerkin double-panel integral by brute-force quadrature.

    Computes ``\\int_i \\int_j w_i(r) w_j(r') / |r - r'| ds' ds`` (without the
    ``1/(4 pi eps)`` prefactor) with tensor Gauss-Legendre rules on both
    panels.  Used only for validation; accuracy degrades for touching or
    overlapping panels where the integrand is singular.
    """
    ui, vi, wi = tensor_grid(panel_i.u_range, panel_i.v_range, order, order)
    uj, vj, wj = tensor_grid(panel_j.u_range, panel_j.v_range, order, order)

    pts_i = np.empty((ui.size, 3))
    pts_i[:, panel_i.normal_axis] = panel_i.offset
    pts_i[:, panel_i.u_axis] = ui
    pts_i[:, panel_i.v_axis] = vi

    pts_j = np.empty((uj.size, 3))
    pts_j[:, panel_j.normal_axis] = panel_j.offset
    pts_j[:, panel_j.u_axis] = uj
    pts_j[:, panel_j.v_axis] = vj

    diff = pts_i[:, None, :] - pts_j[None, :, :]
    dist = np.sqrt(np.sum(diff * diff, axis=-1))
    kernel = 1.0 / dist

    w_i = wi if weight_i is None else wi * weight_i(ui, vi)
    w_j = wj if weight_j is None else wj * weight_j(uj, vj)
    return float(w_i @ kernel @ w_j)
