"""Panel-pair Galerkin integrator.

This is the sequential kernel executed inside every parallel computing node
of Algorithm 1: given two templates (a rectangular support plus an optional
1-D shape profile), compute

.. math::  \\tilde P_{ij} = \\frac{1}{4 \\pi \\varepsilon}
    \\int_{s_i} \\int_{s_j} \\frac{T_i(r) \\, T_j(r')}{\\lVert r - r' \\rVert}
    \\, ds' \\, ds .

Evaluation strategy (paper Section 4.1):

* constant-constant, parallel panels: exact closed form through the
  16-corner sum of the indefinite integral (eq. (9));
* constant-constant, orthogonal panels: outer Gauss-Legendre quadrature over
  the smaller panel of the inner 2-D closed-form collocation integral;
* pairs beyond the approximation distance: the collocation (midpoint) or
  point (monopole) reductions selected by
  :class:`~repro.greens.policy.ApproximationPolicy`;
* templates with 1-D shape variation: Gauss quadrature along the varying
  direction(s), analytic strip/rectangle integrals for the remaining
  directions -- this is exactly the rearrangement of paper eq. (7).

The collocation evaluation can be swapped for one of the acceleration
techniques of Section 4.2 by passing a different ``collocation_fn`` (see
:mod:`repro.accel.engine`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from repro.geometry.panel import Panel
from repro.greens.collocation import collocation_from_deltas, strip_integral
from repro.greens.indefinite import galerkin_parallel_rectangles
from repro.greens.policy import ApproximationPolicy, EvaluationLevel
from repro.greens.quadrature import gauss_legendre_interval

__all__ = ["ShapeProfile", "GalerkinIntegrator", "IntegrationCounters"]

#: Signature of a collocation evaluator: ``f(a1, a2, b1, b2, c)`` returning
#: the definite rectangle potential for corner coordinate differences.
CollocationFn = Callable[..., np.ndarray]


class ShapeProfile(Protocol):
    """A 1-D template shape along one tangential axis of a panel.

    Implementations live in :mod:`repro.basis.templates`; the integrator only
    needs the axis the shape varies along ("u" or "v"), point evaluation and
    the integral of the shape over its support.
    """

    axis: str

    def __call__(self, coords: np.ndarray) -> np.ndarray:
        """Evaluate the shape at absolute coordinates along its axis."""
        ...  # pragma: no cover - protocol

    def integral(self) -> float:
        """Integral of the shape over its support (used for point reductions)."""
        ...  # pragma: no cover - protocol


@dataclass
class IntegrationCounters:
    """Counts of panel-pair evaluations by level, for load modelling and tests."""

    exact_parallel: int = 0
    exact_quadrature: int = 0
    collocation: int = 0
    point: int = 0
    profile_quadrature: int = 0

    def total(self) -> int:
        """Total number of panel-pair evaluations."""
        return (
            self.exact_parallel
            + self.exact_quadrature
            + self.collocation
            + self.point
            + self.profile_quadrature
        )

    def as_dict(self) -> dict[str, int]:
        """Counters as a plain dictionary."""
        return {
            "exact_parallel": self.exact_parallel,
            "exact_quadrature": self.exact_quadrature,
            "collocation": self.collocation,
            "point": self.point,
            "profile_quadrature": self.profile_quadrature,
        }


class GalerkinIntegrator:
    """Computes Galerkin integrals between (possibly shaped) panel templates.

    Parameters
    ----------
    permittivity:
        Absolute permittivity of the uniform medium.
    policy:
        Approximation-distance policy; defaults to the paper's 1 % tolerance.
    collocation_fn:
        Evaluator for the definite 2-D rectangle potential from corner
        coordinate differences.  Defaults to the exact closed form; the
        acceleration engines substitute their tabulated/fitted versions.
    order_near, order_far:
        Gauss-Legendre orders used for outer quadratures on nearby and
        well-separated pairs respectively.
    """

    def __init__(
        self,
        permittivity: float,
        policy: ApproximationPolicy | None = None,
        collocation_fn: CollocationFn | None = None,
        order_near: int = 6,
        order_far: int = 3,
    ):
        if permittivity <= 0.0:
            raise ValueError(f"permittivity must be positive, got {permittivity}")
        self.permittivity = float(permittivity)
        self.policy = policy if policy is not None else ApproximationPolicy()
        self.collocation_fn = collocation_fn if collocation_fn is not None else collocation_from_deltas
        if order_near < 1 or order_far < 1:
            raise ValueError("quadrature orders must be >= 1")
        self.order_near = int(order_near)
        self.order_far = int(order_far)
        self.counters = IntegrationCounters()

    # ------------------------------------------------------------------
    @property
    def prefactor(self) -> float:
        """The ``1 / (4 pi eps)`` kernel prefactor."""
        return 1.0 / (4.0 * math.pi * self.permittivity)

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def template_pair(
        self,
        panel_i: Panel,
        panel_j: Panel,
        profile_i: ShapeProfile | None = None,
        profile_j: ShapeProfile | None = None,
    ) -> float:
        """Galerkin integral between two templates, including the kernel prefactor."""
        if profile_i is None and profile_j is None:
            raw = self._constant_pair(panel_i, panel_j)
        else:
            raw = self._profiled_pair(panel_i, panel_j, profile_i, profile_j)
        return self.prefactor * raw

    # ------------------------------------------------------------------
    # Constant-constant pairs
    # ------------------------------------------------------------------
    def _constant_pair(self, panel_i: Panel, panel_j: Panel) -> float:
        level = self.policy.level(panel_i, panel_j)
        if level is EvaluationLevel.POINT:
            self.counters.point += 1
            distance = panel_i.centroid_distance(panel_j)
            return panel_i.area * panel_j.area / distance
        if level is EvaluationLevel.COLLOCATION:
            self.counters.collocation += 1
            # Collapse the smaller panel to its centroid (its size controls
            # the midpoint-rule error) and keep the other panel exact.
            small, large = self._order_by_size(panel_i, panel_j)
            value = self._panel_potential(large, small.centroid[None, :])[0]
            return small.area * value
        if panel_i.is_parallel_to(panel_j):
            self.counters.exact_parallel += 1
            separation = panel_i.offset - panel_j.offset
            return galerkin_parallel_rectangles(
                panel_i.u_range, panel_i.v_range, panel_j.u_range, panel_j.v_range, separation
            )
        # Orthogonal panels: outer quadrature over the smaller panel of the
        # exact collocation potential of the other.
        self.counters.exact_quadrature += 1
        small, large = self._order_by_size(panel_i, panel_j)
        order = self._quadrature_order(small, large)
        pts, weights = self._tensor_nodes(small, order, order)
        values = self._panel_potential(large, pts)
        return float(weights @ values)

    # ------------------------------------------------------------------
    # Pairs involving shaped (arch) templates
    # ------------------------------------------------------------------
    def _profiled_pair(
        self,
        panel_i: Panel,
        panel_j: Panel,
        profile_i: ShapeProfile | None,
        profile_j: ShapeProfile | None,
    ) -> float:
        # Orient so the first panel always carries a profile.
        if profile_i is None:
            panel_i, panel_j = panel_j, panel_i
            profile_i, profile_j = profile_j, profile_i
        assert profile_i is not None

        level = self.policy.level(panel_i, panel_j)
        if level is EvaluationLevel.POINT:
            self.counters.point += 1
            q_i = self._template_moment(panel_i, profile_i)
            q_j = self._template_moment(panel_j, profile_j)
            distance = panel_i.centroid_distance(panel_j)
            return q_i * q_j / distance

        self.counters.profile_quadrature += 1
        order = self._quadrature_order(panel_i, panel_j)
        pts, weights = self._weighted_nodes(panel_i, profile_i, order)
        if profile_j is None:
            values = self._panel_potential(panel_j, pts)
            return float(weights @ values)
        values = self._shaped_panel_potential(panel_j, profile_j, pts, order)
        return float(weights @ values)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _order_by_size(panel_i: Panel, panel_j: Panel) -> tuple[Panel, Panel]:
        """Return (smaller, larger) by diagonal."""
        if panel_i.diagonal <= panel_j.diagonal:
            return panel_i, panel_j
        return panel_j, panel_i

    def _quadrature_order(self, panel_i: Panel, panel_j: Panel) -> int:
        """Pick a quadrature order based on pair proximity."""
        separation = panel_i.separation(panel_j)
        scale = max(panel_i.diagonal, panel_j.diagonal)
        return self.order_near if separation < scale else self.order_far

    def _panel_potential(self, panel: Panel, points: np.ndarray) -> np.ndarray:
        """Rectangle potential of ``panel`` at ``points`` via the configured evaluator."""
        x = points[:, panel.u_axis]
        y = points[:, panel.v_axis]
        z = points[:, panel.normal_axis] - panel.offset
        u1, u2 = panel.u_range
        v1, v2 = panel.v_range
        return self.collocation_fn(x - u1, x - u2, y - v1, y - v2, z)

    def _tensor_nodes(self, panel: Panel, order_u: int, order_v: int) -> tuple[np.ndarray, np.ndarray]:
        """Tensor Gauss nodes (as 3-D points) and weights over a panel."""
        u_nodes, u_weights = gauss_legendre_interval(panel.u_range[0], panel.u_range[1], order_u)
        v_nodes, v_weights = gauss_legendre_interval(panel.v_range[0], panel.v_range[1], order_v)
        uu, vv = np.meshgrid(u_nodes, v_nodes, indexing="ij")
        ww = np.outer(u_weights, v_weights).ravel()
        pts = np.empty((uu.size, 3))
        pts[:, panel.normal_axis] = panel.offset
        pts[:, panel.u_axis] = uu.ravel()
        pts[:, panel.v_axis] = vv.ravel()
        return pts, ww

    def _weighted_nodes(
        self, panel: Panel, profile: ShapeProfile, order: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Tensor Gauss nodes over ``panel`` with weights including the profile."""
        pts, weights = self._tensor_nodes(panel, order, order)
        axis = panel.u_axis if profile.axis == "u" else panel.v_axis
        weights = weights * profile(pts[:, axis])
        return pts, weights

    def _template_moment(self, panel: Panel, profile: ShapeProfile | None) -> float:
        """Total "charge moment" of a template: ``\\int T ds``."""
        if profile is None:
            return panel.area
        if profile.axis == "u":
            return profile.integral() * panel.v_span
        return profile.integral() * panel.u_span

    def _shaped_panel_potential(
        self,
        panel: Panel,
        profile: ShapeProfile,
        points: np.ndarray,
        order: int,
    ) -> np.ndarray:
        """Potential of a shaped panel at field points.

        Gauss quadrature along the profile axis, analytic strip integral along
        the other tangential axis (the innermost closed form of eq. (7)).
        """
        if profile.axis == "u":
            p_axis, s_axis = panel.u_axis, panel.v_axis
            p_range, s_range = panel.u_range, panel.v_range
        else:
            p_axis, s_axis = panel.v_axis, panel.u_axis
            p_range, s_range = panel.v_range, panel.u_range

        nodes, weights = gauss_legendre_interval(p_range[0], p_range[1], order)
        shape_values = profile(nodes)

        # Distances from every field point to every strip.
        dp = points[:, p_axis][:, None] - nodes[None, :]
        dz = (points[:, panel.normal_axis] - panel.offset)[:, None]
        b1 = points[:, s_axis][:, None] - s_range[0]
        b2 = points[:, s_axis][:, None] - s_range[1]
        strips = strip_integral(b1, b2, dp, np.broadcast_to(dz, dp.shape))
        return strips @ (weights * shape_values)
