"""Approximation-distance policy (paper Section 4.1).

The paper observes that the Green's function decays with distance, so beyond
an *approximation distance* the expensive high-dimensional closed forms are
numerically indistinguishable from cheaper low-dimensional ones.  The policy
implemented here classifies a panel pair into one of three evaluation
levels based on the ratio of the pair separation to the panel size:

* ``EXACT`` -- full 4-D treatment (closed form for parallel panels,
  quadrature over the inner 2-D closed form otherwise).
* ``COLLOCATION`` -- one integration collapsed to the panel centroid
  (midpoint rule), the other kept as the exact 2-D closed form.
* ``POINT`` -- both integrations collapsed to the centroids (monopole
  approximation).

The thresholds follow the leading-order error of the midpoint/monopole
approximations, ``(rho / d)^2`` with ``rho`` half the panel diagonal, so a
requested tolerance translates directly into a distance in units of the
panel diagonal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.geometry.panel import Panel

__all__ = ["EvaluationLevel", "ApproximationPolicy"]


class EvaluationLevel(Enum):
    """How accurately a template-pair integral is evaluated."""

    EXACT = "exact"
    COLLOCATION = "collocation"
    POINT = "point"


@dataclass(frozen=True)
class ApproximationPolicy:
    """Distance-based selection of the integral evaluation level.

    Parameters
    ----------
    tolerance:
        Target relative error contributed by the dimension-reduction
        approximations (the paper uses 1 %).
    safety_factor:
        Multiplier on the error-derived distances; > 1 makes the policy more
        conservative.
    """

    tolerance: float = 0.01
    safety_factor: float = 1.5

    def __post_init__(self) -> None:
        if not (0.0 < self.tolerance < 1.0):
            raise ValueError(f"tolerance must be in (0, 1), got {self.tolerance}")
        if self.safety_factor < 1.0:
            raise ValueError(f"safety_factor must be >= 1, got {self.safety_factor}")

    # ------------------------------------------------------------------
    @property
    def collocation_distance_factor(self) -> float:
        """Distance (in units of the collocated panel's half-diagonal) beyond
        which the midpoint rule meets the tolerance."""
        return self.safety_factor / math.sqrt(self.tolerance)

    @property
    def point_distance_factor(self) -> float:
        """Distance (in units of the larger half-diagonal) beyond which the
        monopole approximation meets the tolerance.

        The monopole error sums the contributions of both panels, hence the
        ``sqrt(2)`` relative to the collocation factor.
        """
        return self.safety_factor * math.sqrt(2.0 / self.tolerance)

    # ------------------------------------------------------------------
    def level(self, panel_i: Panel, panel_j: Panel) -> EvaluationLevel:
        """Classify a panel pair."""
        distance = panel_i.centroid_distance(panel_j)
        rho_i = 0.5 * panel_i.diagonal
        rho_j = 0.5 * panel_j.diagonal
        rho_max = max(rho_i, rho_j)
        if distance >= self.point_distance_factor * rho_max:
            return EvaluationLevel.POINT
        rho_min = min(rho_i, rho_j)
        if distance >= self.collocation_distance_factor * rho_min:
            return EvaluationLevel.COLLOCATION
        return EvaluationLevel.EXACT

    def collocation_threshold(self, panel: Panel) -> float:
        """Absolute distance beyond which ``panel`` may be collocated."""
        return self.collocation_distance_factor * 0.5 * panel.diagonal

    def point_threshold(self, panel_i: Panel, panel_j: Panel) -> float:
        """Absolute distance beyond which the pair may use the point level."""
        return self.point_distance_factor * 0.5 * max(panel_i.diagonal, panel_j.diagonal)
