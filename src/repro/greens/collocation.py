"""Closed-form collocation integrals over axis-aligned rectangles.

The central quantity is the potential integral of a uniformly charged
rectangle evaluated at an arbitrary point,

.. math::  f_{2D}(r) = \\int_{y'_1}^{y'_2} \\int_{x'_1}^{x'_2}
              \\frac{dx' \\, dy'}{\\lVert r - r' \\rVert},

the "2-D analytical expression" of paper eq. (13) (without the dielectric
prefactor).  Its closed form is the signed sum over the four rectangle
corners of :func:`collocation_corner`,

.. math::  g(a, b, c) = a \\operatorname{asinh}\\frac{b}{\\sqrt{a^2+c^2}}
              + b \\operatorname{asinh}\\frac{a}{\\sqrt{b^2+c^2}}
              - c \\arctan\\frac{a b}{c \\, r},

with :math:`r = \\sqrt{a^2+b^2+c^2}`.  All functions are fully vectorised
over the field points; the corner function accepts arrays of any shape.

The 1-D analytic strip integral :func:`strip_integral` (a single
``asinh`` difference) is the innermost closed form used when a template has
shape variation along one axis: the outer direction is then handled by
Gaussian quadrature, which is exactly the dimension-reduction strategy of
paper Section 4.1.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.panel import Panel

__all__ = [
    "collocation_corner",
    "collocation_from_deltas",
    "collocation_potential",
    "strip_integral",
]

#: Relative floor used to regularise degenerate denominators; the affected
#: terms have a vanishing prefactor, so the floor never biases the result.
_TINY = 1e-300


def collocation_corner(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Corner (double antiderivative) function of the rectangle potential.

    ``d^2 g / (da db) = 1 / sqrt(a^2 + b^2 + c^2)``.  The function is even in
    ``c`` and symmetric under ``a <-> b``.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    c = np.asarray(c, dtype=float)
    r = np.sqrt(a * a + b * b + c * c)
    den_a = np.sqrt(a * a + c * c)
    den_b = np.sqrt(b * b + c * c)
    term_a = a * np.arcsinh(b / np.maximum(den_a, _TINY))
    term_b = b * np.arcsinh(a / np.maximum(den_b, _TINY))
    # The arctangent of the ratio (rather than atan2) keeps the corner
    # function even in c, as the underlying integral is (oddness of atan
    # lets |c| replace c); the term vanishes with its prefactor when c == 0,
    # and the _TINY floor covers subnormal c where c * c underflows and a
    # touching corner makes r exactly 0.
    ratio = a * b / np.where(c == 0.0, np.inf, np.maximum(np.abs(c) * r, _TINY))
    term_c = -np.abs(c) * np.arctan(ratio)
    # When the corner coincides with the field point (a = b = c = 0) every
    # term has a vanishing prefactor; force exact zeros there.
    zero = (den_a == 0.0) & (den_b == 0.0)
    result = term_a + term_b + term_c
    if np.any(zero):
        result = np.where(zero, 0.0, result)
    return result


def collocation_from_deltas(
    a1: np.ndarray,
    a2: np.ndarray,
    b1: np.ndarray,
    b2: np.ndarray,
    c: np.ndarray,
) -> np.ndarray:
    """Definite rectangle potential from corner coordinate differences.

    ``a1 = x - x'_1``, ``a2 = x - x'_2``, ``b1 = y - y'_1``, ``b2 = y - y'_2``
    and ``c`` is the out-of-plane offset.  This is the signature shared by
    the acceleration techniques of Section 4, which replace the corner
    function (or the whole definite integral) with cheaper approximations.

    Algebraically this is the signed 4-corner sum of
    :func:`collocation_corner`, but evaluated in a fused form that shares
    the squares, the in-plane denominators and the corner distances across
    the four corners: 8 square roots and 8 ``asinh`` instead of the 12 and
    8 of four independent corner evaluations, and roughly half the cheap
    elementwise traffic -- which matters because this function sits at the
    bottom of the assembly hot path and is memory-bandwidth bound there.
    Agreement with the corner-sum form is exact to round-off (asserted in
    the greens test suite).
    """
    a1 = np.asarray(a1, dtype=float)
    a2 = np.asarray(a2, dtype=float)
    b1 = np.asarray(b1, dtype=float)
    b2 = np.asarray(b2, dtype=float)
    c = np.asarray(c, dtype=float)

    c2 = c * c
    a1s = a1 * a1
    a2s = a2 * a2
    b1s = b1 * b1
    b2s = b2 * b2
    # In-plane denominators, floored like the corner function's guard (the
    # multiplying prefactor vanishes wherever the floor engages).
    da1 = np.maximum(np.sqrt(a1s + c2), _TINY)
    da2 = np.maximum(np.sqrt(a2s + c2), _TINY)
    db1 = np.maximum(np.sqrt(b1s + c2), _TINY)
    db2 = np.maximum(np.sqrt(b2s + c2), _TINY)

    term = a1 * (np.arcsinh(b1 / da1) - np.arcsinh(b2 / da1)) - a2 * (
        np.arcsinh(b1 / da2) - np.arcsinh(b2 / da2)
    )
    term += b1 * (np.arcsinh(a1 / db1) - np.arcsinh(a2 / db1)) - b2 * (
        np.arcsinh(a1 / db2) - np.arcsinh(a2 / db2)
    )

    # The arctangent of the ratio (rather than atan2) keeps the integral
    # even in c (oddness of atan lets |c| replace c throughout); the whole
    # term vanishes with its prefactor when c == 0 (the final where also
    # discards the 0 * inf corner-distance NaNs that only arise in that
    # plane).  The _TINY floor covers subnormal c where c * c underflows,
    # making a corner distance exactly 0 at a touching corner (0/0).
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        cr = np.where(c == 0.0, np.inf, np.abs(c))
        atan_sum = np.arctan(a1 * b1 / np.maximum(cr * np.sqrt(a1s + b1s + c2), _TINY))
        atan_sum -= np.arctan(a2 * b1 / np.maximum(cr * np.sqrt(a2s + b1s + c2), _TINY))
        atan_sum -= np.arctan(a1 * b2 / np.maximum(cr * np.sqrt(a1s + b2s + c2), _TINY))
        atan_sum += np.arctan(a2 * b2 / np.maximum(cr * np.sqrt(a2s + b2s + c2), _TINY))
        term_c = np.where(c == 0.0, 0.0, -np.abs(c) * atan_sum)
    return term + term_c


def collocation_potential(panel: Panel, points: np.ndarray) -> np.ndarray:
    """Potential integral of a uniformly charged panel at field points.

    Parameters
    ----------
    panel:
        The source rectangle (unit charge density, no dielectric prefactor).
    points:
        Field points, shape ``(..., 3)``.

    Returns
    -------
    numpy.ndarray
        ``\\int_panel ds' / |r - r'|`` for every field point, shape ``(...)``.
    """
    pts = np.asarray(points, dtype=float)
    if pts.shape[-1] != 3:
        raise ValueError(f"points must have a trailing axis of size 3, got shape {pts.shape}")
    x = pts[..., panel.u_axis]
    y = pts[..., panel.v_axis]
    z = pts[..., panel.normal_axis] - panel.offset
    u1, u2 = panel.u_range
    v1, v2 = panel.v_range
    return collocation_from_deltas(x - u1, x - u2, y - v1, y - v2, z)


def strip_integral(
    b1: np.ndarray,
    b2: np.ndarray,
    a: np.ndarray,
    c: np.ndarray,
) -> np.ndarray:
    """1-D analytic integral ``\\int_{v'_1}^{v'_2} dv' / |r - r'|``.

    With ``b1 = y - v'_1``, ``b2 = y - v'_2``, ``a`` the in-plane offset along
    the other tangential axis and ``c`` the out-of-plane offset, the result is
    ``asinh(b1 / d) - asinh(b2 / d)`` with ``d = sqrt(a^2 + c^2)``.

    The singular case ``d = 0`` (the field point lying on the integration
    line) never occurs for the template pairs this is used on (it would mean
    two overlapping conductor surfaces); the denominator is floored to keep
    the expression finite for round-off-level ``d``.
    """
    a = np.asarray(a, dtype=float)
    c = np.asarray(c, dtype=float)
    d = np.sqrt(a * a + c * c)
    d = np.maximum(d, _TINY)
    return np.arcsinh(np.asarray(b1, dtype=float) / d) - np.arcsinh(np.asarray(b2, dtype=float) / d)
