"""Indefinite (4-fold antiderivative) integral and exact parallel-panel Galerkin integral.

Paper eq. (9) observes that the 4-D definite Galerkin integral between two
parallel rectangles can be written as corner substitutions of an indefinite
integral ``F_indefinite(x - x', y - y', z)``.  This module provides that
indefinite integral in closed form and the resulting exact 16-corner signed
sum for the definite integral.

Derivation.  With ``a = x - x'``, ``b = y - y'`` and constant plane
separation ``c``, the required function is the antiderivative of
``1/sqrt(a^2+b^2+c^2)`` taken twice in ``a`` and twice in ``b``.  Carrying
out the four integrations and dropping terms that are affine in ``a`` or in
``b`` (they cancel exactly under the double second-differencing of the
corner substitution) gives

.. math::

   F(a,b,c) = \\tfrac{a}{2}(b^2 - c^2) \\ln(a + r)
            + \\tfrac{b}{2}(a^2 - c^2) \\ln(b + r)
            + \\tfrac{c^2}{2} r - \\tfrac{r^3}{6}
            - a b c \\arctan\\frac{a b}{c r},

with :math:`r = \\sqrt{a^2 + b^2 + c^2}`.  The identity is validated against
brute-force quadrature in ``tests/greens/test_indefinite.py``.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.panel import Panel

__all__ = [
    "indefinite_integral",
    "definite_from_corners",
    "galerkin_parallel_rectangles",
    "galerkin_parallel_panels",
]

_TINY = 1e-300


def indefinite_integral(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """The 4-fold antiderivative ``F(a, b, c)`` described in the module docstring.

    Vectorised over ``a``, ``b`` and ``c`` (broadcast together).  The
    logarithmic terms are guarded for the corner cases ``a + r = 0`` /
    ``b + r = 0`` (which can only happen with a vanishing prefactor, on the
    touching corners of coplanar panels) and the arctangent term is guarded
    for ``c = 0`` where its prefactor vanishes as well.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    # The definite 4-D integral depends only on |c| (the distance between the
    # two parallel planes), so the indefinite integral is defined even in c.
    c = np.abs(np.asarray(c, dtype=float))
    a, b, c = np.broadcast_arrays(a, b, c)
    r = np.sqrt(a * a + b * b + c * c)

    log_a = np.log(np.maximum(a + r, _TINY))
    log_b = np.log(np.maximum(b + r, _TINY))
    term_log_a = 0.5 * a * (b * b - c * c) * log_a
    term_log_b = 0.5 * b * (a * a - c * c) * log_b
    # Force the 0 * log(0) limits (touching corners of coplanar panels) to 0.
    term_log_a = np.where((b * b - c * c) * a == 0.0, 0.0, term_log_a)
    term_log_b = np.where((a * a - c * c) * b == 0.0, 0.0, term_log_b)

    term_r = 0.5 * c * c * r - (r * r * r) / 6.0
    # The denominator floor covers subnormal separations where ``c * c``
    # underflows (making ``r = 0`` at touching corners, hence 0/0); the
    # prefactor guard forces the exact limit wherever any factor vanishes.
    den = np.where(c == 0.0, np.inf, np.maximum(c * r, _TINY))
    with np.errstate(over="ignore"):
        ratio = a * b / den
    term_atan = np.where(a * b * c == 0.0, 0.0, -a * b * c * np.arctan(ratio))
    return term_log_a + term_log_b + term_r + term_atan


def definite_from_corners(
    x_limits: tuple[float, float],
    xp_limits: tuple[float, float],
    y_limits: tuple[float, float],
    yp_limits: tuple[float, float],
    c: float,
) -> float:
    """Exact 4-D integral ``\\int\\int\\int\\int dx dx' dy dy' / |r - r'|``.

    The two rectangles ``x in x_limits, y in y_limits`` and
    ``x' in xp_limits, y' in yp_limits`` lie in parallel planes separated by
    ``c`` along their common normal.  The result is the 16-corner signed sum
    of :func:`indefinite_integral` with sign ``(-1)**(p+q+s+t)``.
    """
    a_vals = np.array(
        [x_limits[p] - xp_limits[q] for p in range(2) for q in range(2)]
    )
    b_vals = np.array(
        [y_limits[s] - yp_limits[t] for s in range(2) for t in range(2)]
    )
    sign_x = np.array([(-1) ** (p + q) for p in range(2) for q in range(2)], dtype=float)
    sign_y = np.array([(-1) ** (s + t) for s in range(2) for t in range(2)], dtype=float)
    values = indefinite_integral(a_vals[:, None], b_vals[None, :], float(c))
    return float(sign_x @ values @ sign_y)


def galerkin_parallel_rectangles(
    u_i: tuple[float, float],
    v_i: tuple[float, float],
    u_j: tuple[float, float],
    v_j: tuple[float, float],
    separation: float,
) -> float:
    """Exact Galerkin integral between two parallel axis-aligned rectangles.

    Identical to :func:`definite_from_corners` with the argument order used
    throughout the assembly code: the two in-plane extents of each rectangle
    followed by the normal-direction separation of their planes.
    """
    return definite_from_corners(u_i, u_j, v_i, v_j, separation)


def galerkin_parallel_panels(panel_i: Panel, panel_j: Panel) -> float:
    """Exact Galerkin integral (no prefactor) between two parallel panels.

    Raises
    ------
    ValueError
        If the panels are not parallel.
    """
    if panel_i.normal_axis != panel_j.normal_axis:
        raise ValueError(
            "galerkin_parallel_panels needs parallel panels; got normal axes "
            f"{panel_i.normal_axis} and {panel_j.normal_axis}"
        )
    separation = panel_i.offset - panel_j.offset
    return galerkin_parallel_rectangles(
        panel_i.u_range, panel_i.v_range, panel_j.u_range, panel_j.v_range, separation
    )
