"""Batched panel-integral kernel core shared by every assembly path.

This module is the vectorised heart of the system-setup step: it evaluates
Galerkin template-pair integrals over *arrays* of pairs at once, replacing
the per-pair pure-Python loop that dominated setup time (the profiled
arch-template pairs alone accounted for ~90 % of the ``galerkin-aca`` setup
at N≈464).  One :class:`BatchedKernelCore` instance serves all six engine
backends: the dense assemblers
(:class:`~repro.assembly.batch.BatchGalerkinAssembler` and the
shared/distributed flows built on it), the PWC substrate, and the
hierarchical compression's entry oracle
(:class:`~repro.compress.entries.GalerkinEntries`).

Evaluation strategy (identical decisions to
:class:`~repro.greens.galerkin.GalerkinIntegrator`, to round-off):

* ``point``        -- monopole reduction of far pairs (moments / distance);
* ``collocation``  -- midpoint-rule reduction (smaller panel collapsed);
* ``parallel``     -- exact 16-corner closed form for parallel flat panels;
* ``orthogonal``   -- tensor-Gauss outer quadrature over the inner closed
  form for orthogonal flat panels;
* ``profiled``     -- pairs involving arch templates, evaluated by batched
  tensor-Gauss quadrature with vectorised arch-profile weights (and the
  analytic strip integral when *both* templates carry a profile).  Only
  templates with profiles outside the stock
  :class:`~repro.basis.templates.BoundArchProfile` family fall back to the
  per-pair reference integrator.

Two optional acceleration layers sit behind feature flags:

* ``near_field="table"`` swaps the exact near/singular closed forms for the
  precomputed integral tables of :mod:`repro.accel.tabulation` (the
  collocation-integral table plus the new Galerkin indefinite-integral
  table), both keyed by normalised pair geometry through degree-one/-three
  homogeneity.  This trades ~1e-3 relative accuracy for table lookups.
* ``use_numba=True`` (or ``REPRO_NUMBA=1``) JIT-compiles the innermost
  transcendental kernels through :mod:`repro.accel.jit`, degrading
  gracefully to NumPy when numba is absent.

Agreement of the default (``near_field="exact"``, NumPy) configuration with
the entry-wise ``template_pair`` reference is asserted to 1e-10 by the
hypothesis property suite in ``tests/greens/test_batched_property.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.accel.jit import select_kernels
from repro.basis.templates import BoundArchProfile, TemplateInstance

if TYPE_CHECKING:  # imported lazily to avoid a cycle with repro.assembly
    from repro.assembly.mapping import TemplateArrays
from repro.greens.galerkin import GalerkinIntegrator
from repro.greens.policy import ApproximationPolicy
from repro.greens.quadrature import gauss_legendre
from repro.greens.collocation import strip_integral

__all__ = ["ArchProfileArrays", "BatchedKernelCore", "NEAR_FIELD_MODES"]

#: Supported near-field evaluation modes.
NEAR_FIELD_MODES = ("exact", "table")

#: Temporary-array budget (in doubles) of one quadrature chunk.  Sized so
#: the handful of (pairs, order^2)-shaped temporaries of a chunk stay within
#: the L2 cache: the closed forms are memory-bandwidth bound, and evaluating
#: them over cache-resident slices is measurably faster than one huge sweep
#: (it also bounds the peak memory of the (pairs, order^2, order) strip
#: tensors of the doubly-profiled path).
_CHUNK_DOUBLES = 262_144


def _count(counts: dict[str, int], category: str, amount: int) -> None:
    """Accumulate the pair count of one evaluation category."""
    if amount:
        counts[category] = counts.get(category, 0) + int(amount)


@dataclass
class ArchProfileArrays:
    """Structure-of-arrays view of the arch profiles of a template list.

    Attributes
    ----------
    is_arch:
        Whether the template carries a stock
        :class:`~repro.basis.templates.BoundArchProfile` (templates with
        other :class:`~repro.greens.galerkin.ShapeProfile` implementations
        keep the per-pair fallback).
    axis:
        Global coordinate axis (0/1/2) the profile varies along; 0 for flat
        templates (never read for them).
    edge, ingrowing, extension, sign:
        The :class:`~repro.basis.templates.ArchProfile` parameters.
    """

    is_arch: np.ndarray
    axis: np.ndarray
    edge: np.ndarray
    ingrowing: np.ndarray
    extension: np.ndarray
    sign: np.ndarray

    @classmethod
    def from_templates(
        cls,
        templates: Sequence[TemplateInstance],
        u_axis: np.ndarray,
        v_axis: np.ndarray,
    ) -> "ArchProfileArrays":
        """Extract the arch parameters of every template.

        ``u_axis`` / ``v_axis`` are the per-template global tangential axis
        indices (from :meth:`TemplateArrays.tangential_axes`), used to map
        the profile's panel-local ``"u"``/``"v"`` axis onto a coordinate.
        """
        count = len(templates)
        is_arch = np.zeros(count, dtype=bool)
        axis = np.zeros(count, dtype=np.intp)
        edge = np.zeros(count)
        ingrowing = np.ones(count)
        extension = np.ones(count)
        sign = np.ones(count)
        for t, template in enumerate(templates):
            profile = template.profile
            if profile is None or not isinstance(profile, BoundArchProfile):
                continue
            arch = profile.arch
            is_arch[t] = True
            axis[t] = u_axis[t] if arch.axis == "u" else v_axis[t]
            edge[t] = arch.edge
            ingrowing[t] = arch.ingrowing_length
            extension[t] = arch.extension_length
            sign[t] = float(arch.inward_sign)
        return cls(
            is_arch=is_arch,
            axis=axis,
            edge=edge,
            ingrowing=ingrowing,
            extension=extension,
            sign=sign,
        )

    def values(self, t: np.ndarray, coords: np.ndarray) -> np.ndarray:
        """Vectorised arch evaluation ``A_{t[p]}(coords[p, ...])``.

        ``t`` selects one template per leading row of ``coords``; trailing
        dimensions of ``coords`` are the evaluation points.  Reproduces
        :meth:`repro.basis.templates.ArchProfile.__call__` arithmetic
        exactly.
        """
        expand = (slice(None),) + (None,) * (coords.ndim - 1)
        offset = (coords - self.edge[t][expand]) * self.sign[t][expand]
        inside = np.exp(-offset / self.ingrowing[t][expand])
        outside = np.exp(offset / self.extension[t][expand])
        return np.where(offset >= 0.0, inside, outside)


class BatchedKernelCore:
    """Vectorised Galerkin template-pair kernel over template arrays.

    Parameters
    ----------
    arrays:
        Flattened template geometry (:class:`TemplateArrays`).
    permittivity:
        Absolute permittivity of the uniform medium.
    policy:
        Approximation-distance policy; defaults to the paper's 1 %.
    collocation_fn:
        Override of the definite rectangle-potential evaluator (the
        Section 4.2 acceleration techniques plug in here).  When given it
        takes precedence over both ``near_field`` and ``use_numba`` for the
        collocation-integral evaluations.
    order_near, order_far:
        Gauss-Legendre orders for nearby / well-separated outer quadratures.
    near_field:
        ``"exact"`` (default) evaluates near/singular pairs with the exact
        closed forms; ``"table"`` uses the precomputed normalised-geometry
        integral tables of :mod:`repro.accel.tabulation`.
    use_numba:
        Three-state JIT flag (see :func:`repro.accel.jit.resolve_use_numba`).
    """

    def __init__(
        self,
        arrays: TemplateArrays,
        permittivity: float,
        policy: ApproximationPolicy | None = None,
        collocation_fn: Callable | None = None,
        order_near: int = 6,
        order_far: int = 3,
        near_field: str = "exact",
        use_numba: bool | None = None,
    ):
        if permittivity <= 0.0:
            raise ValueError(f"permittivity must be positive, got {permittivity}")
        if near_field not in NEAR_FIELD_MODES:
            raise ValueError(
                f"near_field must be one of {NEAR_FIELD_MODES}, got {near_field!r}"
            )
        if order_near < 1 or order_far < 1:
            raise ValueError("quadrature orders must be >= 1")
        self.arrays = arrays
        self.permittivity = float(permittivity)
        self.policy = policy if policy is not None else ApproximationPolicy()
        self.order_near = int(order_near)
        self.order_far = int(order_far)
        self.near_field = near_field

        default_collocation, indefinite_fn, self.jit_active = select_kernels(use_numba)
        self.indefinite_fn = indefinite_fn
        if collocation_fn is None and near_field == "table":
            from repro.accel.tabulation import (
                DirectTableEvaluator,
                GalerkinIndefiniteTableEvaluator,
            )

            # 13 points/dim on the 5-D collocation table (the Table 1
            # micro-benchmark default of 9 dominates the assembly error);
            # the 3-D indefinite table is cheap enough at its default.
            collocation_fn = DirectTableEvaluator(points_per_dim=13)
            self.indefinite_fn = GalerkinIndefiniteTableEvaluator()
        self.collocation_fn = (
            collocation_fn if collocation_fn is not None else default_collocation
        )

        u_axis, v_axis = arrays.tangential_axes()
        self._u_axis = u_axis
        self._v_axis = v_axis
        self.profiles = ArchProfileArrays.from_templates(arrays.templates, u_axis, v_axis)
        # The per-pair reference integrator backs templates whose profile is
        # not a stock arch (the ShapeProfile protocol admits arbitrary
        # shapes); it shares every numerical choice with the batched paths.
        self.integrator = GalerkinIntegrator(
            permittivity,
            policy=self.policy,
            collocation_fn=self.collocation_fn,
            order_near=order_near,
            order_far=order_far,
        )

    # ------------------------------------------------------------------
    @property
    def prefactor(self) -> float:
        """The ``1 / (4 pi eps)`` kernel prefactor."""
        return 1.0 / (4.0 * math.pi * self.permittivity)

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def evaluate_pairs(
        self, i: np.ndarray, j: np.ndarray, counts: dict[str, int] | None = None
    ) -> np.ndarray:
        """Galerkin integrals (prefactor included) of template pairs ``(i[p], j[p])``.

        The pairs may come from anywhere in the iteration space — the dense
        assemblers pass triangular chunks, the compression oracle scattered
        rows/columns.  Values match per-pair
        :meth:`~repro.greens.galerkin.GalerkinIntegrator.template_pair`
        calls to round-off (asserted at 1e-10 by the property suite).
        """
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        if counts is None:
            counts = {}
        arrays = self.arrays
        values = np.zeros(i.size)

        centroid_i = arrays.centroid[i]
        centroid_j = arrays.centroid[j]
        distance = np.linalg.norm(centroid_i - centroid_j, axis=1)
        rho_i = 0.5 * arrays.diagonal[i]
        rho_j = 0.5 * arrays.diagonal[j]
        rho_max = np.maximum(rho_i, rho_j)
        rho_min = np.minimum(rho_i, rho_j)

        is_point = distance >= self.policy.point_distance_factor * rho_max
        is_colloc = (~is_point) & (
            distance >= self.policy.collocation_distance_factor * rho_min
        )
        profiled = arrays.has_profile[i] | arrays.has_profile[j]

        # --- point level (flat and profiled templates alike) ---------------
        if np.any(is_point):
            values[is_point] = (
                arrays.moment[i[is_point]]
                * arrays.moment[j[is_point]]
                / distance[is_point]
            )
            _count(counts, "point", int(np.count_nonzero(is_point)))

        # --- profiled pairs below the point distance -----------------------
        profiled_near = profiled & ~is_point
        # Pairs whose every profiled member is a stock arch run batched;
        # anything else (custom ShapeProfile implementations) falls back.
        arch_ok = (~arrays.has_profile[i] | self.profiles.is_arch[i]) & (
            ~arrays.has_profile[j] | self.profiles.is_arch[j]
        )
        batched_mask = profiled_near & arch_ok
        fallback_mask = profiled_near & ~arch_ok
        if np.any(batched_mask):
            values[batched_mask] = self._profiled_batch(i[batched_mask], j[batched_mask])
            _count(counts, "profiled", int(np.count_nonzero(batched_mask)))
        needs_prefactor = ~fallback_mask
        if np.any(fallback_mask):
            # The reference integrator includes the prefactor already.
            values[fallback_mask] = self._profiled_fallback(
                i[fallback_mask], j[fallback_mask]
            )
            _count(counts, "profiled", int(np.count_nonzero(fallback_mask)))

        flat = ~profiled & ~is_point

        # --- collocation level ---------------------------------------------
        colloc_mask = flat & is_colloc
        if np.any(colloc_mask):
            values[colloc_mask] = self._collocation_level(i[colloc_mask], j[colloc_mask])
            _count(counts, "collocation", int(np.count_nonzero(colloc_mask)))

        # --- exact level -----------------------------------------------------
        exact_mask = flat & ~is_colloc
        if np.any(exact_mask):
            same_normal = arrays.normal_axis[i] == arrays.normal_axis[j]
            parallel_mask = exact_mask & same_normal
            orthogonal_mask = exact_mask & ~same_normal
            if np.any(parallel_mask):
                values[parallel_mask] = self._parallel_exact(
                    i[parallel_mask], j[parallel_mask]
                )
                _count(counts, "parallel", int(np.count_nonzero(parallel_mask)))
            if np.any(orthogonal_mask):
                values[orthogonal_mask] = self._orthogonal_exact(
                    i[orthogonal_mask], j[orthogonal_mask]
                )
                _count(counts, "orthogonal", int(np.count_nonzero(orthogonal_mask)))

        values[needs_prefactor] *= self.prefactor
        return values

    # ------------------------------------------------------------------
    # Shared geometric helpers
    # ------------------------------------------------------------------
    def _box_separation(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Bounding-box gap of each pair (``Panel.separation`` vectorised)."""
        arrays = self.arrays
        gap = np.maximum(
            0.0, np.maximum(arrays.lo[i] - arrays.hi[j], arrays.lo[j] - arrays.hi[i])
        )
        return np.linalg.norm(gap, axis=1)

    def _near_mask(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Pairs whose outer quadrature uses ``order_near`` (policy of
        :meth:`GalerkinIntegrator._quadrature_order`)."""
        arrays = self.arrays
        scale = np.maximum(arrays.diagonal[i], arrays.diagonal[j])
        return self._box_separation(i, j) < scale

    def _interval_nodes(
        self, lo: np.ndarray, hi: np.ndarray, order: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-pair Gauss-Legendre nodes/weights mapped onto ``[lo, hi]``.

        Reproduces :func:`gauss_legendre_interval` arithmetic per row.
        """
        ref_nodes, ref_weights = gauss_legendre(order)
        half = 0.5 * (hi - lo)
        mid = 0.5 * (hi + lo)
        nodes = mid[:, None] + half[:, None] * ref_nodes[None, :]
        weights = half[:, None] * ref_weights[None, :]
        return nodes, weights

    def _tensor_points(
        self, t: np.ndarray, order: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Tensor-Gauss 3-D points and weights over panels ``t``.

        Returns ``(points, weights, uu, vv)`` with ``points`` of shape
        ``(len(t), order**2, 3)`` and the flattened in-plane node
        coordinate grids (u varying slowest, matching the per-pair
        ``meshgrid(indexing="ij")`` layout).
        """
        arrays = self.arrays
        u_ax = self._u_axis[t]
        v_ax = self._v_axis[t]
        nodes_u, w_u = self._interval_nodes(arrays.lo[t, u_ax], arrays.hi[t, u_ax], order)
        nodes_v, w_v = self._interval_nodes(arrays.lo[t, v_ax], arrays.hi[t, v_ax], order)
        count = t.size
        uu = np.broadcast_to(nodes_u[:, :, None], (count, order, order)).reshape(count, -1)
        vv = np.broadcast_to(nodes_v[:, None, :], (count, order, order)).reshape(count, -1)
        weights = (w_u[:, :, None] * w_v[:, None, :]).reshape(count, -1)

        one_u = (np.arange(3)[None, :] == u_ax[:, None]).astype(float)
        one_v = (np.arange(3)[None, :] == v_ax[:, None]).astype(float)
        one_n = (np.arange(3)[None, :] == arrays.normal_axis[t][:, None]).astype(float)
        points = (
            uu[:, :, None] * one_u[:, None, :]
            + vv[:, :, None] * one_v[:, None, :]
            + arrays.offset[t][:, None, None] * one_n[:, None, :]
        )
        return points, weights, uu, vv

    def _coordinate(self, points: np.ndarray, axis: np.ndarray) -> np.ndarray:
        """Gather ``points[p, :, axis[p]]`` for per-row axis selections."""
        return np.take_along_axis(points, axis[:, None, None], axis=2)[:, :, 0]

    def _panel_potential(self, t: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Rectangle potential of panels ``t`` at per-pair field points."""
        arrays = self.arrays
        u_ax = self._u_axis[t]
        v_ax = self._v_axis[t]
        x = self._coordinate(points, u_ax)
        y = self._coordinate(points, v_ax)
        z = self._coordinate(points, arrays.normal_axis[t]) - arrays.offset[t][:, None]
        return self.collocation_fn(
            x - arrays.lo[t, u_ax][:, None],
            x - arrays.hi[t, u_ax][:, None],
            y - arrays.lo[t, v_ax][:, None],
            y - arrays.hi[t, v_ax][:, None],
            z,
        )

    # ------------------------------------------------------------------
    # Flat-pair categories
    # ------------------------------------------------------------------
    def _collocation_level(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Midpoint-rule reduction: the smaller panel collapses to its centroid."""
        arrays = self.arrays
        smaller_is_i = arrays.diagonal[i] <= arrays.diagonal[j]
        small = np.where(smaller_is_i, i, j)
        large = np.where(smaller_is_i, j, i)

        centroid = arrays.centroid[small]
        u_ax = self._u_axis[large]
        v_ax = self._v_axis[large]
        normal = arrays.normal_axis[large]
        rows = np.arange(small.size)

        x = centroid[rows, u_ax]
        y = centroid[rows, v_ax]
        z = centroid[rows, normal] - arrays.offset[large]
        potential = self.collocation_fn(
            x - arrays.lo[large, u_ax],
            x - arrays.hi[large, u_ax],
            y - arrays.lo[large, v_ax],
            y - arrays.hi[large, v_ax],
            z,
        )
        return arrays.area[small] * potential

    def _parallel_exact(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Exact 16-corner closed form for parallel flat panels."""
        arrays = self.arrays
        u_ax = self._u_axis[i]
        v_ax = self._v_axis[i]

        ui = (arrays.lo[i, u_ax], arrays.hi[i, u_ax])
        uj = (arrays.lo[j, u_ax], arrays.hi[j, u_ax])
        vi = (arrays.lo[i, v_ax], arrays.hi[i, v_ax])
        vj = (arrays.lo[j, v_ax], arrays.hi[j, v_ax])
        separation = arrays.offset[i] - arrays.offset[j]

        total = np.zeros(i.size)
        for p in range(2):
            for q in range(2):
                for s in range(2):
                    for t in range(2):
                        sign = (-1) ** (p + q + s + t)
                        total += sign * self.indefinite_fn(
                            ui[p] - uj[q], vi[s] - vj[t], separation
                        )
        return total

    def _orthogonal_exact(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Outer tensor-Gauss quadrature over the exact collocation potential."""
        arrays = self.arrays
        values = np.empty(i.size)

        # The smaller panel carries the outer quadrature.
        smaller_is_i = arrays.diagonal[i] <= arrays.diagonal[j]
        small = np.where(smaller_is_i, i, j)
        large = np.where(smaller_is_i, j, i)

        near = self._near_mask(i, j)
        for order, mask in ((self.order_near, near), (self.order_far, ~near)):
            if np.any(mask):
                values[mask] = self._orthogonal_quadrature(small[mask], large[mask], order)
        return values

    def _orthogonal_quadrature(
        self, small: np.ndarray, large: np.ndarray, order: int
    ) -> np.ndarray:
        """Tensor Gauss quadrature over ``small`` of the potential of ``large``."""
        chunk = max(1, _CHUNK_DOUBLES // (order * order))
        values = np.empty(small.size)
        for start in range(0, small.size, chunk):
            stop = min(start + chunk, small.size)
            points, weights, _, _ = self._tensor_points(small[start:stop], order)
            potentials = self._panel_potential(large[start:stop], points)
            values[start:stop] = np.sum(weights * potentials, axis=1)
        return values

    # ------------------------------------------------------------------
    # Profiled (arch-template) pairs
    # ------------------------------------------------------------------
    def _profiled_batch(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Batched tensor-Gauss evaluation of arch-template pairs.

        Mirrors :meth:`GalerkinIntegrator._profiled_pair`: the template
        carrying a profile hosts the outer quadrature (the first operand
        when both do), weighted by its arch values; the other template
        contributes either the closed-form rectangle potential (flat) or
        the strip-integral quadrature (arch).
        """
        arrays = self.arrays
        # Orient so "outer" always carries a profile, like the reference's
        # operand swap.
        outer_is_i = arrays.has_profile[i]
        outer = np.where(outer_is_i, i, j)
        inner = np.where(outer_is_i, j, i)

        near = self._near_mask(i, j)
        both = arrays.has_profile[inner]
        values = np.empty(i.size)
        for order, order_mask in ((self.order_near, near), (self.order_far, ~near)):
            for shaped_inner in (False, True):
                mask = order_mask & (both == shaped_inner)
                if not np.any(mask):
                    continue
                values[mask] = self._profiled_group(
                    outer[mask], inner[mask], order, shaped_inner
                )
        return values

    def _profiled_group(
        self, outer: np.ndarray, inner: np.ndarray, order: int, shaped_inner: bool
    ) -> np.ndarray:
        """One (order, inner-kind) group, chunked to bound temporary memory."""
        per_pair = order * order * (order if shaped_inner else 1)
        chunk = max(1, _CHUNK_DOUBLES // max(per_pair, 1))
        values = np.empty(outer.size)
        for start in range(0, outer.size, chunk):
            stop = min(start + chunk, outer.size)
            values[start:stop] = self._profiled_chunk(
                outer[start:stop], inner[start:stop], order, shaped_inner
            )
        return values

    def _profiled_chunk(
        self, outer: np.ndarray, inner: np.ndarray, order: int, shaped_inner: bool
    ) -> np.ndarray:
        arrays = self.arrays
        profiles = self.profiles

        points, weights, uu, vv = self._tensor_points(outer, order)
        # Outer weights include the arch profile along its varying axis.
        on_u = profiles.axis[outer] == self._u_axis[outer]
        coords = np.where(on_u[:, None], uu, vv)
        weights = weights * profiles.values(outer, coords)

        if not shaped_inner:
            potentials = self._panel_potential(inner, points)
            return np.sum(weights * potentials, axis=1)

        # Inner arch template: Gauss quadrature along its profile axis of
        # the analytic strip integral along the other tangential axis.
        p_ax = profiles.axis[inner]
        s_ax = np.where(p_ax == self._u_axis[inner], self._v_axis[inner], self._u_axis[inner])
        nodes_in, w_in = self._interval_nodes(
            arrays.lo[inner, p_ax], arrays.hi[inner, p_ax], order
        )
        shape_in = profiles.values(inner, nodes_in)

        cp = self._coordinate(points, p_ax)
        cs = self._coordinate(points, s_ax)
        cz = self._coordinate(points, arrays.normal_axis[inner]) - arrays.offset[inner][:, None]

        dp = cp[:, :, None] - nodes_in[:, None, :]
        dz = np.broadcast_to(cz[:, :, None], dp.shape)
        b1 = (cs - arrays.lo[inner, s_ax][:, None])[:, :, None]
        b2 = (cs - arrays.hi[inner, s_ax][:, None])[:, :, None]
        strips = strip_integral(b1, b2, dp, dz)
        inner_weights = w_in * shape_in
        potentials = np.einsum("pqk,pk->pq", strips, inner_weights)
        return np.sum(weights * potentials, axis=1)

    def _profiled_fallback(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Per-pair reference evaluation for non-arch shaped templates."""
        templates = self.arrays.templates
        results = np.empty(i.size)
        for index, (ti, tj) in enumerate(zip(i, j)):
            template_i = templates[int(ti)]
            template_j = templates[int(tj)]
            results[index] = self.integrator.template_pair(
                template_i.panel, template_j.panel, template_i.profile, template_j.profile
            )
        return results
