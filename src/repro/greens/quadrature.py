"""Gauss-Legendre quadrature rules and tensor-product grids.

The instantiable-basis integrator follows the strategy of paper eq. (7):
analytic closed forms for the inner integrations and Gauss-Legendre
quadrature for the outer ones.  The rules are cached because the same small
orders are requested millions of times during system setup.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["gauss_legendre", "gauss_legendre_interval", "tensor_grid"]


@lru_cache(maxsize=None)
def gauss_legendre(order: int) -> tuple[np.ndarray, np.ndarray]:
    """Return cached Gauss-Legendre nodes and weights on ``[-1, 1]``.

    The returned arrays are read-only views; copy before modifying.

    The cache is unbounded: only a handful of distinct orders ever occur
    (the near/far orders of the integrators plus a few test values), and a
    bounded LRU would silently thrash — evicting and recomputing rules
    millions of times — if the distinct-order count ever crossed the bound
    mid-assembly.
    """
    if order < 1:
        raise ValueError(f"quadrature order must be >= 1, got {order}")
    nodes, weights = np.polynomial.legendre.leggauss(order)
    nodes.setflags(write=False)
    weights.setflags(write=False)
    return nodes, weights


def gauss_legendre_interval(lo: float, hi: float, order: int) -> tuple[np.ndarray, np.ndarray]:
    """Gauss-Legendre nodes and weights mapped onto ``[lo, hi]``."""
    if hi <= lo:
        raise ValueError(f"invalid interval [{lo}, {hi}]")
    nodes, weights = gauss_legendre(order)
    half = 0.5 * (hi - lo)
    mid = 0.5 * (hi + lo)
    return mid + half * nodes, half * weights


def tensor_grid(
    u_range: tuple[float, float],
    v_range: tuple[float, float],
    order_u: int,
    order_v: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Tensor-product Gauss-Legendre rule over a rectangle.

    Returns
    -------
    (u, v, w):
        Flattened arrays of the u coordinates, v coordinates and combined
        weights of the ``order_u x order_v`` tensor rule.
    """
    u_nodes, u_weights = gauss_legendre_interval(u_range[0], u_range[1], order_u)
    v_nodes, v_weights = gauss_legendre_interval(v_range[0], v_range[1], order_v)
    uu, vv = np.meshgrid(u_nodes, v_nodes, indexing="ij")
    ww = np.outer(u_weights, v_weights)
    return uu.ravel(), vv.ravel(), ww.ravel()
