"""Parallel system setup (paper Sections 3 and 5).

The system matrix ``P`` (size ``N x N``, one row/column per basis function)
is built by iterating the upper triangle of the *template* matrix ``P~``
(size ``M x M``, one row/column per template) with a single linear index
``k`` and condensing each entry into ``P`` on the fly (Algorithm 1 and
Figure 3 of the paper).  Because every entry is independent, the index range
can be partitioned equally over parallel computing nodes with no data
dependencies -- the property that gives the method its ~90 % parallel
efficiency.

Modules
-------
* :mod:`repro.assembly.mapping` -- the ``k <-> (i, j)`` triangular index
  conversion and the flattened template arrays.
* :mod:`repro.assembly.partition` -- equal partitioning of the index range.
* :mod:`repro.assembly.serial` -- the straightforward per-pair assembler
  (reference implementation of Algorithm 1's inner loop).
* :mod:`repro.assembly.batch` -- the vectorised assembler that evaluates a
  partition of template pairs in grouped numpy batches.
* :mod:`repro.assembly.shared_memory` / :mod:`repro.assembly.distributed` --
  the OpenMP-like and MPI-like execution flows of Figures 4-6.
"""

from repro.assembly.mapping import (
    TemplateArrays,
    triangular_index_to_pair,
    pair_to_triangular_index,
    num_template_pairs,
)
from repro.assembly.partition import partition_range, WorkPartition
from repro.assembly.serial import SerialAssembler
from repro.assembly.batch import BatchGalerkinAssembler, ChunkResult
from repro.assembly.shared_memory import SharedMemoryAssembler
from repro.assembly.distributed import DistributedAssembler

__all__ = [
    "TemplateArrays",
    "triangular_index_to_pair",
    "pair_to_triangular_index",
    "num_template_pairs",
    "partition_range",
    "WorkPartition",
    "SerialAssembler",
    "BatchGalerkinAssembler",
    "ChunkResult",
    "SharedMemoryAssembler",
    "DistributedAssembler",
]
