"""Distributed-memory (MPI-like) system-setup flow (paper Section 5.2, Figures 5-6).

Every process owns a copy of the template definitions.  The main process
(``d = 1``) computes its partition directly into ``P``; every other process
computes its partition into a *partial matrix* covering only the contiguous
column range of ``P`` touched by its partition (adjacent partitions may
share one common column, Figure 5), sends it to the main process, and the
main process shifts and accumulates it.

As with the shared-memory flow, two execution modes exist: sequential
in-process execution (used by the simulated parallel machine -- identical
arithmetic, per-node times and communication volumes, independent of the
host's physical core count) and real ``multiprocessing`` processes with the
partial matrices transferred over pipes, which exercises the actual
send/receive path.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass

import numpy as np

from repro.assembly.batch import BatchGalerkinAssembler, ChunkResult, symmetrize_upper
from repro.assembly.partition import WorkPartition, partition_range
from repro.assembly.shared_memory import ParallelSetupResult
from repro.basis.functions import BasisSet
from repro.greens.policy import ApproximationPolicy
from repro.obs.trace import span

__all__ = ["DistributedAssembler", "PartialMatrix"]


@dataclass
class PartialMatrix:
    """The message a non-main process sends to the main process.

    Attributes
    ----------
    first_column, last_column:
        Inclusive column range of ``P`` covered by the partial matrix.
    block:
        The ``N x (last_column - first_column + 1)`` partial matrix
        ``P_{K_d}``.
    """

    first_column: int
    last_column: int
    block: np.ndarray

    @property
    def num_columns(self) -> int:
        """Width ``N_d`` of the partial matrix."""
        return self.last_column - self.first_column + 1

    @property
    def nbytes(self) -> int:
        """Message size in bytes (the communication volume of the node)."""
        return int(self.block.nbytes)


def _distributed_worker(args) -> tuple[PartialMatrix, ChunkResult]:
    """Worker process: assemble one partition into a column-restricted block."""
    (
        basis_set,
        permittivity,
        policy,
        order_near,
        order_far,
        batch_size,
        near_field,
        use_numba,
        start,
        stop,
    ) = args
    assembler = BatchGalerkinAssembler(
        basis_set,
        permittivity,
        policy=policy,
        order_near=order_near,
        order_far=order_far,
        batch_size=batch_size,
        near_field=near_field,
        use_numba=use_numba,
    )
    full, result = assembler.assemble_chunk(start, stop, condense_mode="upper")
    first, last = assembler.chunk_column_range(start, stop)
    return PartialMatrix(first, last, full[:, first : last + 1].copy()), result


class DistributedAssembler:
    """MPI-like parallel assembler with partial-matrix communication."""

    def __init__(
        self,
        basis_set: BasisSet,
        permittivity: float,
        num_nodes: int = 1,
        policy: ApproximationPolicy | None = None,
        collocation_fn=None,
        order_near: int = 6,
        order_far: int = 3,
        batch_size: int = 200_000,
        near_field: str = "exact",
        use_numba: bool | None = None,
        use_processes: bool = False,
    ):
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        self.basis_set = basis_set
        self.permittivity = float(permittivity)
        self.num_nodes = int(num_nodes)
        self.policy = policy
        self.order_near = int(order_near)
        self.order_far = int(order_far)
        self.batch_size = int(batch_size)
        self.near_field = str(near_field)
        self.use_numba = use_numba
        self.use_processes = bool(use_processes)
        self.assembler = BatchGalerkinAssembler(
            basis_set,
            permittivity,
            policy=policy,
            collocation_fn=collocation_fn,
            order_near=order_near,
            order_far=order_far,
            batch_size=batch_size,
            near_field=near_field,
            use_numba=use_numba,
        )

    # ------------------------------------------------------------------
    def partitions(self) -> list[WorkPartition]:
        """Equal division of the iteration space over the processes."""
        return partition_range(self.assembler.num_pairs, self.num_nodes)

    def assemble(self) -> ParallelSetupResult:
        """Run the distributed-memory system-setup flow."""
        with span("assembly.assemble", flow="distributed", nodes=self.num_nodes):
            parts = self.partitions()
            if self.use_processes and self.num_nodes > 1:
                partials, node_results = self._run_with_processes(parts)
            else:
                partials, node_results = self._run_sequentially(parts)

            # Merge: the main process' own partition is partials[0]; the
            # others arrive as column-restricted messages that are shifted
            # and added.
            n = self.assembler.num_basis_functions
            upper = np.zeros((n, n))
            communication_bytes = [0]
            for index, partial in enumerate(partials):
                upper[:, partial.first_column : partial.last_column + 1] += partial.block
                if index > 0:
                    communication_bytes.append(partial.nbytes)
            matrix = symmetrize_upper(upper)
            return ParallelSetupResult(
                matrix=matrix,
                node_results=node_results,
                communication_bytes=communication_bytes,
            )

    # ------------------------------------------------------------------
    def _run_sequentially(
        self, parts: list[WorkPartition]
    ) -> tuple[list[PartialMatrix], list[ChunkResult]]:
        """Execute every process' work in-process (simulated machine mode)."""
        partials: list[PartialMatrix] = []
        node_results: list[ChunkResult] = []
        n = self.assembler.num_basis_functions
        for part in parts:
            block_full = np.zeros((n, n))
            _, result = self.assembler.assemble_chunk(
                part.start, part.stop, out=block_full, condense_mode="upper"
            )
            first, last = self.assembler.chunk_column_range(part.start, part.stop)
            if last < first:
                first, last = 0, 0
            partials.append(PartialMatrix(first, last, block_full[:, first : last + 1].copy()))
            node_results.append(result)
        return partials, node_results

    def _run_with_processes(
        self, parts: list[WorkPartition]
    ) -> tuple[list[PartialMatrix], list[ChunkResult]]:
        """Execute the non-main partitions in worker processes (Figure 6 flow)."""
        jobs = [
            (
                self.basis_set,
                self.permittivity,
                self.policy,
                self.order_near,
                self.order_far,
                self.batch_size,
                self.near_field,
                self.use_numba,
                part.start,
                part.stop,
            )
            for part in parts
        ]
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=min(self.num_nodes, len(jobs))) as pool:
            results = pool.map(_distributed_worker, jobs)
        partials = [partial for partial, _ in results]
        node_results = [result for _, result in results]
        return partials, node_results
