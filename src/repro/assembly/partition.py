"""Workload partitioning over parallel nodes (Algorithm 1).

The iteration space ``{0, ..., K-1}`` over the upper triangle of ``P~`` is
divided into ``D`` contiguous partitions of (as close as possible) equal
size; each parallel node owns one partition.  The paper notes that although
the per-entry cost varies with template type and orientation, this simple
equal split is balanced enough in practice -- the load-balance benchmark
(``benchmarks/test_table3_scaling.py``) measures exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WorkPartition", "partition_range"]


@dataclass(frozen=True)
class WorkPartition:
    """One node's share of the template-pair iteration space."""

    node: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        """Number of template-pair indices owned by the node."""
        return self.stop - self.start

    def indices(self) -> np.ndarray:
        """The explicit index array (rarely needed; chunks use start/stop)."""
        return np.arange(self.start, self.stop, dtype=np.int64)


def partition_range(total: int, num_nodes: int) -> list[WorkPartition]:
    """Split ``{0, ..., total-1}`` into ``num_nodes`` contiguous partitions.

    The first ``total % num_nodes`` partitions receive one extra element, so
    partition sizes differ by at most one (the paper's equal division).
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    base = total // num_nodes
    remainder = total % num_nodes
    partitions: list[WorkPartition] = []
    start = 0
    for node in range(num_nodes):
        size = base + (1 if node < remainder else 0)
        partitions.append(WorkPartition(node=node, start=start, stop=start + size))
        start += size
    return partitions
