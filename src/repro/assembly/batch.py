"""Vectorised assembler for the system-setup step.

The per-pair reference assembler (:mod:`repro.assembly.serial`) evaluates one
template pair at a time, which is faithful to Algorithm 1 but slow in pure
Python.  This module performs the *same* computation -- the same
approximation-distance decisions, the same closed forms, the same
condensation -- but groups the template pairs of a partition into numpy
batches by evaluation category:

* ``point``        -- monopole reduction (far pairs),
* ``collocation``  -- midpoint-rule reduction,
* ``parallel``     -- exact 16-corner closed form (parallel panels),
* ``orthogonal``   -- outer Gauss quadrature over the inner closed form,
* ``profiled``     -- pairs involving arch templates (delegated per pair to
  the reference integrator; they are a small fraction of all pairs).

Equivalence with the reference assembler is asserted (to floating-point
round-off) in ``tests/assembly/test_batch_equivalence.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.assembly.mapping import TemplateArrays, triangular_index_to_pair
from repro.basis.functions import BasisSet
from repro.greens.collocation import collocation_from_deltas
from repro.greens.galerkin import GalerkinIntegrator
from repro.greens.indefinite import indefinite_integral
from repro.greens.policy import ApproximationPolicy
from repro.greens.quadrature import gauss_legendre

__all__ = ["ChunkResult", "BatchGalerkinAssembler", "symmetrize_upper"]


def symmetrize_upper(upper: np.ndarray) -> np.ndarray:
    """Rebuild the full symmetric ``P`` from an upper-condensed accumulation.

    ``upper`` contains every contribution exactly once at ``(l_i, l_j)`` with
    ``l_i <= l_j`` (diagonal contributions already doubled per Algorithm 1);
    the full matrix is ``U + U^T`` with the diagonal counted once.
    """
    upper = np.asarray(upper, dtype=float)
    return upper + upper.T - np.diag(np.diag(upper))


def _count(counts: dict[str, int], category: str, mask: np.ndarray) -> None:
    """Accumulate the pair count of one evaluation category."""
    counts[category] = counts.get(category, 0) + int(np.count_nonzero(mask))


@dataclass
class ChunkResult:
    """Outcome of assembling one partition (chunk) of the iteration space."""

    start: int
    stop: int
    elapsed_seconds: float
    category_counts: dict[str, int] = field(default_factory=dict)

    @property
    def num_pairs(self) -> int:
        """Number of template pairs evaluated in this chunk."""
        return self.stop - self.start

    def predicted_seconds(self, unit_costs: dict[str, float]) -> float:
        """Workload-model time of the chunk: per-category counts times unit costs.

        Used by the simulated parallel machine to remove wall-clock noise:
        the unit costs are calibrated from a measured single-node run, so the
        prediction reflects the partition's actual work mix (the source of
        load imbalance) rather than transient scheduler jitter.
        """
        return sum(
            count * unit_costs.get(category, 0.0)
            for category, count in self.category_counts.items()
        )

    def with_elapsed(self, elapsed_seconds: float) -> "ChunkResult":
        """Copy of the result with a substituted elapsed time."""
        return ChunkResult(
            start=self.start,
            stop=self.stop,
            elapsed_seconds=elapsed_seconds,
            category_counts=dict(self.category_counts),
        )


class BatchGalerkinAssembler:
    """Vectorised implementation of the Algorithm 1 inner loop.

    Parameters mirror :class:`~repro.assembly.serial.SerialAssembler`; the
    additional ``batch_size`` bounds the temporary memory used per numpy
    batch.
    """

    def __init__(
        self,
        basis_set: BasisSet,
        permittivity: float,
        policy: ApproximationPolicy | None = None,
        collocation_fn=None,
        order_near: int = 6,
        order_far: int = 3,
        batch_size: int = 200_000,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.basis_set = basis_set
        self.arrays = TemplateArrays.from_basis_set(basis_set)
        self.permittivity = float(permittivity)
        self.policy = policy if policy is not None else ApproximationPolicy()
        self.collocation_fn = (
            collocation_fn if collocation_fn is not None else collocation_from_deltas
        )
        self.order_near = int(order_near)
        self.order_far = int(order_far)
        self.batch_size = int(batch_size)
        # The per-pair fallback integrator shares every numerical choice so
        # the profiled pairs are bit-identical with the reference assembler.
        self.integrator = GalerkinIntegrator(
            permittivity,
            policy=self.policy,
            collocation_fn=self.collocation_fn,
            order_near=order_near,
            order_far=order_far,
        )
        u_axis, v_axis = self.arrays.tangential_axes()
        self._u_axis = u_axis
        self._v_axis = v_axis

    # ------------------------------------------------------------------
    @property
    def num_pairs(self) -> int:
        """Iteration-space size ``K = M (M + 1) / 2``."""
        return self.arrays.num_pairs

    @property
    def num_basis_functions(self) -> int:
        """Condensed matrix dimension ``N``."""
        return self.arrays.num_basis_functions

    @property
    def prefactor(self) -> float:
        """``1 / (4 pi eps)``."""
        return 1.0 / (4.0 * np.pi * self.permittivity)

    # ------------------------------------------------------------------
    def assemble(self, out: np.ndarray | None = None) -> np.ndarray:
        """Assemble the full condensed matrix ``P``."""
        matrix, _ = self.assemble_chunk(0, self.num_pairs, out=out)
        return matrix

    def assemble_chunk(
        self,
        start: int,
        stop: int,
        out: np.ndarray | None = None,
        condense_mode: str = "full",
    ) -> tuple[np.ndarray, ChunkResult]:
        """Assemble the contribution of index range ``[start, stop)``.

        Parameters
        ----------
        condense_mode:
            ``"full"`` accumulates both ``(l_i, l_j)`` and its transpose (the
            shared-memory flow, where every node writes the same full matrix);
            ``"upper"`` accumulates only ``(l_i, l_j)`` with the Algorithm 1
            doubling rule for off-diagonal template pairs that condense onto
            the diagonal of ``P`` -- the distributed flow, whose partial
            matrices cover a contiguous column range and are symmetrised by
            the main process after the merge (see
            :func:`symmetrize_upper`).

        Returns the accumulated matrix and a :class:`ChunkResult` with the
        wall-clock time and the per-category pair counts of the chunk.
        """
        if condense_mode not in ("full", "upper"):
            raise ValueError(f"condense_mode must be 'full' or 'upper', got {condense_mode!r}")
        if not (0 <= start <= stop <= self.num_pairs):
            raise ValueError(f"invalid chunk [{start}, {stop}) for K={self.num_pairs}")
        n = self.num_basis_functions
        if out is None:
            out = np.zeros((n, n))
        counts: dict[str, int] = {
            "point": 0,
            "collocation": 0,
            "parallel": 0,
            "orthogonal": 0,
            "profiled": 0,
        }
        t_begin = time.perf_counter()
        for batch_start in range(start, stop, self.batch_size):
            batch_stop = min(batch_start + self.batch_size, stop)
            k = np.arange(batch_start, batch_stop, dtype=np.int64)
            self._assemble_batch(k, out, counts, condense_mode)
        elapsed = time.perf_counter() - t_begin
        return out, ChunkResult(
            start=start, stop=stop, elapsed_seconds=elapsed, category_counts=counts
        )

    def chunk_column_range(self, start: int, stop: int) -> tuple[int, int]:
        """Column range of ``P`` touched by a chunk (paper Figure 5).

        Because templates are flattened in basis-function order, the owner
        array ``l`` is non-decreasing and a contiguous ``k`` range maps to a
        contiguous column range ``[first, last]`` (inclusive) of the
        condensed matrix.  The distributed-memory flow uses this to size the
        partial matrices it communicates.
        """
        if stop <= start:
            return (0, -1)
        _, j_first = triangular_index_to_pair(np.asarray([start]))
        _, j_last = triangular_index_to_pair(np.asarray([stop - 1]))
        owner = self.arrays.owner
        return int(owner[int(j_first[0])]), int(owner[int(j_last[0])])

    # ------------------------------------------------------------------
    # Batch machinery
    # ------------------------------------------------------------------
    def _assemble_batch(
        self, k: np.ndarray, out: np.ndarray, counts: dict[str, int], condense_mode: str = "full"
    ) -> None:
        """Evaluate one numpy batch of template pairs and condense into ``out``."""
        i, j = triangular_index_to_pair(k)
        values = self.evaluate_pairs(i, j, counts=counts)
        self._condense(i, j, values, out, condense_mode)

    def evaluate_pairs(
        self, i: np.ndarray, j: np.ndarray, counts: dict[str, int] | None = None
    ) -> np.ndarray:
        """Galerkin integrals of arbitrary template pairs ``(i[p], j[p])``.

        The pairs need not come from the triangular iteration space: the
        hierarchical compression of :mod:`repro.compress` samples scattered
        rows and columns of the condensed matrix through this entry point.
        The values include the kernel prefactor and are identical (to
        round-off) with per-pair :meth:`GalerkinIntegrator.template_pair`
        calls.
        """
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        if counts is None:
            counts = {}
        arrays = self.arrays
        values = np.zeros(i.size)

        centroid_i = arrays.centroid[i]
        centroid_j = arrays.centroid[j]
        distance = np.linalg.norm(centroid_i - centroid_j, axis=1)
        rho_i = 0.5 * arrays.diagonal[i]
        rho_j = 0.5 * arrays.diagonal[j]
        rho_max = np.maximum(rho_i, rho_j)
        rho_min = np.minimum(rho_i, rho_j)

        is_point = distance >= self.policy.point_distance_factor * rho_max
        is_colloc = (~is_point) & (
            distance >= self.policy.collocation_distance_factor * rho_min
        )
        profiled = arrays.has_profile[i] | arrays.has_profile[j]

        # --- point level (applies to flat and profiled templates alike) ----
        point_mask = is_point
        if np.any(point_mask):
            values[point_mask] = (
                arrays.moment[i[point_mask]]
                * arrays.moment[j[point_mask]]
                / distance[point_mask]
            )
            _count(counts, "point", point_mask)

        # --- profiled pairs below the point distance: per-pair fallback ----
        profiled_near = profiled & ~is_point
        if np.any(profiled_near):
            self._profiled_pairs(i[profiled_near], j[profiled_near], values, profiled_near)
            _count(counts, "profiled", profiled_near)

        flat = ~profiled & ~is_point

        # --- collocation level ---------------------------------------------
        colloc_mask = flat & is_colloc
        if np.any(colloc_mask):
            values[colloc_mask] = self._collocation_level(i[colloc_mask], j[colloc_mask])
            _count(counts, "collocation", colloc_mask)

        # --- exact level -----------------------------------------------------
        exact_mask = flat & ~is_colloc
        if np.any(exact_mask):
            same_normal = arrays.normal_axis[i] == arrays.normal_axis[j]
            parallel_mask = exact_mask & same_normal
            orthogonal_mask = exact_mask & ~same_normal
            if np.any(parallel_mask):
                values[parallel_mask] = self._parallel_exact(
                    i[parallel_mask], j[parallel_mask]
                )
                _count(counts, "parallel", parallel_mask)
            if np.any(orthogonal_mask):
                values[orthogonal_mask] = self._orthogonal_exact(
                    i[orthogonal_mask], j[orthogonal_mask]
                )
                _count(counts, "orthogonal", orthogonal_mask)

        # --- prefactor -------------------------------------------------------
        # Profiled near pairs already include the prefactor (the fallback
        # integrator applies it); every vectorised category does not.
        needs_prefactor = ~profiled_near
        values[needs_prefactor] *= self.prefactor
        return values

    def _condense(
        self,
        i: np.ndarray,
        j: np.ndarray,
        values: np.ndarray,
        out: np.ndarray,
        condense_mode: str,
    ) -> None:
        """Accumulate evaluated template pairs into the condensed matrix."""
        arrays = self.arrays
        rows = arrays.owner[i]
        cols = arrays.owner[j]
        off_diagonal = i != j
        if condense_mode == "full":
            np.add.at(out, (rows, cols), values)
            np.add.at(out, (cols[off_diagonal], rows[off_diagonal]), values[off_diagonal])
        else:
            # Algorithm 1: off-diagonal template pairs condensing onto the
            # diagonal of P contribute twice.
            doubled = np.where(off_diagonal & (rows == cols), 2.0 * values, values)
            np.add.at(out, (rows, cols), doubled)

    # ------------------------------------------------------------------
    def _profiled_pairs(
        self, i: np.ndarray, j: np.ndarray, values: np.ndarray, mask: np.ndarray
    ) -> None:
        """Evaluate profiled template pairs one by one with the reference integrator."""
        templates = self.arrays.templates
        results = np.empty(i.size)
        for index, (ti, tj) in enumerate(zip(i, j)):
            template_i = templates[int(ti)]
            template_j = templates[int(tj)]
            results[index] = self.integrator.template_pair(
                template_i.panel, template_j.panel, template_i.profile, template_j.profile
            )
        values[mask] = results

    # ------------------------------------------------------------------
    def _gather_axis(self, data: np.ndarray, rows: np.ndarray, axis_index: np.ndarray) -> np.ndarray:
        """Gather ``data[rows, axis_index]`` for per-row axis selections."""
        return data[rows, axis_index]

    def _collocation_level(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Midpoint-rule reduction: the smaller panel collapses to its centroid."""
        arrays = self.arrays
        smaller_is_i = arrays.diagonal[i] <= arrays.diagonal[j]
        small = np.where(smaller_is_i, i, j)
        large = np.where(smaller_is_i, j, i)

        centroid_small = arrays.centroid[small]
        u_axis = self._u_axis[large]
        v_axis = self._v_axis[large]
        normal = arrays.normal_axis[large]

        x = self._gather_axis(centroid_small, np.arange(small.size), u_axis)
        y = self._gather_axis(centroid_small, np.arange(small.size), v_axis)
        z = self._gather_axis(centroid_small, np.arange(small.size), normal) - arrays.offset[large]

        u_lo = self._gather_axis(arrays.lo[large], np.arange(large.size), u_axis)
        u_hi = self._gather_axis(arrays.hi[large], np.arange(large.size), u_axis)
        v_lo = self._gather_axis(arrays.lo[large], np.arange(large.size), v_axis)
        v_hi = self._gather_axis(arrays.hi[large], np.arange(large.size), v_axis)

        potential = self.collocation_fn(x - u_lo, x - u_hi, y - v_lo, y - v_hi, z)
        return arrays.area[small] * potential

    # ------------------------------------------------------------------
    def _parallel_exact(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Exact 16-corner closed form for parallel flat panels."""
        arrays = self.arrays
        rows = np.arange(i.size)
        u_axis = self._u_axis[i]
        v_axis = self._v_axis[i]

        ui = (
            self._gather_axis(arrays.lo[i], rows, u_axis),
            self._gather_axis(arrays.hi[i], rows, u_axis),
        )
        uj = (
            self._gather_axis(arrays.lo[j], rows, u_axis),
            self._gather_axis(arrays.hi[j], rows, u_axis),
        )
        vi = (
            self._gather_axis(arrays.lo[i], rows, v_axis),
            self._gather_axis(arrays.hi[i], rows, v_axis),
        )
        vj = (
            self._gather_axis(arrays.lo[j], rows, v_axis),
            self._gather_axis(arrays.hi[j], rows, v_axis),
        )
        separation = arrays.offset[i] - arrays.offset[j]

        total = np.zeros(i.size)
        for p in range(2):
            for q in range(2):
                for s in range(2):
                    for t in range(2):
                        sign = (-1) ** (p + q + s + t)
                        total += sign * indefinite_integral(
                            ui[p] - uj[q], vi[s] - vj[t], separation
                        )
        return total

    # ------------------------------------------------------------------
    def _orthogonal_exact(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Outer Gauss quadrature over the exact collocation potential."""
        arrays = self.arrays
        values = np.empty(i.size)

        # Pick the smaller panel as the quadrature (outer) panel.
        smaller_is_i = arrays.diagonal[i] <= arrays.diagonal[j]
        small = np.where(smaller_is_i, i, j)
        large = np.where(smaller_is_i, j, i)

        # Quadrature order depends on the bounding-box separation, mirroring
        # GalerkinIntegrator._quadrature_order.
        gap = np.maximum(0.0, np.maximum(arrays.lo[i] - arrays.hi[j], arrays.lo[j] - arrays.hi[i]))
        separation = np.linalg.norm(gap, axis=1)
        scale = np.maximum(arrays.diagonal[i], arrays.diagonal[j])
        near = separation < scale

        for order, mask in ((self.order_near, near), (self.order_far, ~near)):
            if np.any(mask):
                values[mask] = self._orthogonal_quadrature(small[mask], large[mask], order)
        return values

    def _orthogonal_quadrature(self, small: np.ndarray, large: np.ndarray, order: int) -> np.ndarray:
        """Tensor Gauss quadrature over ``small`` of the potential of ``large``."""
        arrays = self.arrays
        count = small.size
        rows = np.arange(count)
        ref_nodes, ref_weights = gauss_legendre(order)

        su_axis = self._u_axis[small]
        sv_axis = self._v_axis[small]
        s_normal = arrays.normal_axis[small]

        su_lo = self._gather_axis(arrays.lo[small], rows, su_axis)
        su_hi = self._gather_axis(arrays.hi[small], rows, su_axis)
        sv_lo = self._gather_axis(arrays.lo[small], rows, sv_axis)
        sv_hi = self._gather_axis(arrays.hi[small], rows, sv_axis)

        mid_u = 0.5 * (su_lo + su_hi)
        half_u = 0.5 * (su_hi - su_lo)
        mid_v = 0.5 * (sv_lo + sv_hi)
        half_v = 0.5 * (sv_hi - sv_lo)

        nodes_u = mid_u[:, None] + half_u[:, None] * ref_nodes[None, :]
        nodes_v = mid_v[:, None] + half_v[:, None] * ref_nodes[None, :]
        weights = (
            (half_u[:, None] * ref_weights[None, :])[:, :, None]
            * (half_v[:, None] * ref_weights[None, :])[:, None, :]
        ).reshape(count, -1)

        one_hot_u = (np.arange(3)[None, :] == su_axis[:, None]).astype(float)
        one_hot_v = (np.arange(3)[None, :] == sv_axis[:, None]).astype(float)
        one_hot_n = (np.arange(3)[None, :] == s_normal[:, None]).astype(float)

        points = (
            nodes_u[:, :, None, None] * one_hot_u[:, None, None, :]
            + nodes_v[:, None, :, None] * one_hot_v[:, None, None, :]
            + arrays.offset[small][:, None, None, None] * one_hot_n[:, None, None, :]
        ).reshape(count, -1, 3)

        lu_axis = self._u_axis[large]
        lv_axis = self._v_axis[large]
        l_normal = arrays.normal_axis[large]

        x = np.take_along_axis(points, lu_axis[:, None, None], axis=2)[:, :, 0]
        y = np.take_along_axis(points, lv_axis[:, None, None], axis=2)[:, :, 0]
        z = (
            np.take_along_axis(points, l_normal[:, None, None], axis=2)[:, :, 0]
            - arrays.offset[large][:, None]
        )

        lu_lo = self._gather_axis(arrays.lo[large], rows, lu_axis)[:, None]
        lu_hi = self._gather_axis(arrays.hi[large], rows, lu_axis)[:, None]
        lv_lo = self._gather_axis(arrays.lo[large], rows, lv_axis)[:, None]
        lv_hi = self._gather_axis(arrays.hi[large], rows, lv_axis)[:, None]

        potentials = self.collocation_fn(x - lu_lo, x - lu_hi, y - lv_lo, y - lv_hi, z)
        return np.sum(weights * potentials, axis=1)
