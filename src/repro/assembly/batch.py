"""Vectorised assembler for the system-setup step.

The per-pair reference assembler (:mod:`repro.assembly.serial`) evaluates one
template pair at a time, which is faithful to Algorithm 1 but slow in pure
Python.  This module performs the *same* computation -- the same
approximation-distance decisions, the same closed forms, the same
condensation -- but evaluates the template pairs of a partition through the
batched kernel core (:class:`repro.greens.batched.BatchedKernelCore`), which
groups them into numpy batches by evaluation category:

* ``point``        -- monopole reduction (far pairs),
* ``collocation``  -- midpoint-rule reduction,
* ``parallel``     -- exact 16-corner closed form (parallel panels),
* ``orthogonal``   -- outer Gauss quadrature over the inner closed form,
* ``profiled``     -- pairs involving arch templates (batched tensor-Gauss
  quadrature with vectorised arch weights; non-arch shaped templates fall
  back per pair to the reference integrator).

Every engine backend flows through this assembler (directly, through the
shared/distributed parallel flows, or through the compression entry oracle),
so they all share the one kernel core.  Equivalence with the reference
assembler is asserted (to floating-point round-off) in
``tests/assembly/test_batch_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.assembly.mapping import TemplateArrays, triangular_index_to_pair
from repro.basis.functions import BasisSet
from repro.greens.batched import BatchedKernelCore
from repro.greens.policy import ApproximationPolicy
from repro.obs import clock
from repro.obs.metrics import counter

__all__ = ["ChunkResult", "BatchGalerkinAssembler", "symmetrize_upper"]

_BATCHES = counter(
    "repro_assembly_pair_batches_total", "Numpy pair-batches evaluated by the batched assembler"
)
_PAIRS = counter(
    "repro_assembly_pairs_total",
    "Template pairs evaluated, by kernel evaluation category",
    ("category",),
)


def symmetrize_upper(upper: np.ndarray) -> np.ndarray:
    """Rebuild the full symmetric ``P`` from an upper-condensed accumulation.

    ``upper`` contains every contribution exactly once at ``(l_i, l_j)`` with
    ``l_i <= l_j`` (diagonal contributions already doubled per Algorithm 1);
    the full matrix is ``U + U^T`` with the diagonal counted once.
    """
    upper = np.asarray(upper, dtype=float)
    return upper + upper.T - np.diag(np.diag(upper))


@dataclass
class ChunkResult:
    """Outcome of assembling one partition (chunk) of the iteration space."""

    start: int
    stop: int
    elapsed_seconds: float
    category_counts: dict[str, int] = field(default_factory=dict)

    @property
    def num_pairs(self) -> int:
        """Number of template pairs evaluated in this chunk."""
        return self.stop - self.start

    def predicted_seconds(self, unit_costs: dict[str, float]) -> float:
        """Workload-model time of the chunk: per-category counts times unit costs.

        Used by the simulated parallel machine to remove wall-clock noise:
        the unit costs are calibrated from a measured single-node run, so the
        prediction reflects the partition's actual work mix (the source of
        load imbalance) rather than transient scheduler jitter.
        """
        return sum(
            count * unit_costs.get(category, 0.0)
            for category, count in self.category_counts.items()
        )

    def with_elapsed(self, elapsed_seconds: float) -> "ChunkResult":
        """Copy of the result with a substituted elapsed time."""
        return ChunkResult(
            start=self.start,
            stop=self.stop,
            elapsed_seconds=elapsed_seconds,
            category_counts=dict(self.category_counts),
        )


class BatchGalerkinAssembler:
    """Vectorised implementation of the Algorithm 1 inner loop.

    Parameters mirror :class:`~repro.assembly.serial.SerialAssembler`; the
    additional ``batch_size`` bounds the temporary memory used per numpy
    batch, and ``near_field`` / ``use_numba`` select the optional kernel-core
    acceleration layers (see :class:`repro.greens.batched.BatchedKernelCore`).
    """

    def __init__(
        self,
        basis_set: BasisSet,
        permittivity: float,
        policy: ApproximationPolicy | None = None,
        collocation_fn=None,
        order_near: int = 6,
        order_far: int = 3,
        batch_size: int = 200_000,
        near_field: str = "exact",
        use_numba: bool | None = None,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.basis_set = basis_set
        self.core = BatchedKernelCore(
            arrays=TemplateArrays.from_basis_set(basis_set),
            permittivity=permittivity,
            policy=policy,
            collocation_fn=collocation_fn,
            order_near=order_near,
            order_far=order_far,
            near_field=near_field,
            use_numba=use_numba,
        )
        self.arrays = self.core.arrays
        self.permittivity = self.core.permittivity
        self.policy = self.core.policy
        self.collocation_fn = self.core.collocation_fn
        self.order_near = self.core.order_near
        self.order_far = self.core.order_far
        self.batch_size = int(batch_size)
        # The per-pair fallback integrator shares every numerical choice so
        # the profiled-pair fallback stays bit-identical with the reference.
        self.integrator = self.core.integrator

    # ------------------------------------------------------------------
    @property
    def num_pairs(self) -> int:
        """Iteration-space size ``K = M (M + 1) / 2``."""
        return self.arrays.num_pairs

    @property
    def num_basis_functions(self) -> int:
        """Condensed matrix dimension ``N``."""
        return self.arrays.num_basis_functions

    @property
    def prefactor(self) -> float:
        """``1 / (4 pi eps)``."""
        return self.core.prefactor

    # ------------------------------------------------------------------
    def assemble(self, out: np.ndarray | None = None) -> np.ndarray:
        """Assemble the full condensed matrix ``P``."""
        matrix, _ = self.assemble_chunk(0, self.num_pairs, out=out)
        return matrix

    def assemble_chunk(
        self,
        start: int,
        stop: int,
        out: np.ndarray | None = None,
        condense_mode: str = "full",
    ) -> tuple[np.ndarray, ChunkResult]:
        """Assemble the contribution of index range ``[start, stop)``.

        Parameters
        ----------
        condense_mode:
            ``"full"`` accumulates both ``(l_i, l_j)`` and its transpose (the
            shared-memory flow, where every node writes the same full matrix);
            ``"upper"`` accumulates only ``(l_i, l_j)`` with the Algorithm 1
            doubling rule for off-diagonal template pairs that condense onto
            the diagonal of ``P`` -- the distributed flow, whose partial
            matrices cover a contiguous column range and are symmetrised by
            the main process after the merge (see
            :func:`symmetrize_upper`).

        Returns the accumulated matrix and a :class:`ChunkResult` with the
        wall-clock time and the per-category pair counts of the chunk.
        """
        if condense_mode not in ("full", "upper"):
            raise ValueError(f"condense_mode must be 'full' or 'upper', got {condense_mode!r}")
        if not (0 <= start <= stop <= self.num_pairs):
            raise ValueError(f"invalid chunk [{start}, {stop}) for K={self.num_pairs}")
        n = self.num_basis_functions
        if out is None:
            out = np.zeros((n, n))
        counts: dict[str, int] = {
            "point": 0,
            "collocation": 0,
            "parallel": 0,
            "orthogonal": 0,
            "profiled": 0,
        }
        t_begin = clock.now()
        num_batches = 0
        for batch_start in range(start, stop, self.batch_size):
            batch_stop = min(batch_start + self.batch_size, stop)
            k = np.arange(batch_start, batch_stop, dtype=np.int64)
            self._assemble_batch(k, out, counts, condense_mode)
            num_batches += 1
        elapsed = clock.now() - t_begin
        _BATCHES.inc(num_batches)
        for category, count in counts.items():
            if count:
                _PAIRS.inc(count, category=category)
        return out, ChunkResult(
            start=start, stop=stop, elapsed_seconds=elapsed, category_counts=counts
        )

    def chunk_column_range(self, start: int, stop: int) -> tuple[int, int]:
        """Column range of ``P`` touched by a chunk (paper Figure 5).

        Because templates are flattened in basis-function order, the owner
        array ``l`` is non-decreasing and a contiguous ``k`` range maps to a
        contiguous column range ``[first, last]`` (inclusive) of the
        condensed matrix.  The distributed-memory flow uses this to size the
        partial matrices it communicates.
        """
        if stop <= start:
            return (0, -1)
        _, j_first = triangular_index_to_pair(np.asarray([start]))
        _, j_last = triangular_index_to_pair(np.asarray([stop - 1]))
        owner = self.arrays.owner
        return int(owner[int(j_first[0])]), int(owner[int(j_last[0])])

    # ------------------------------------------------------------------
    # Batch machinery
    # ------------------------------------------------------------------
    def _assemble_batch(
        self, k: np.ndarray, out: np.ndarray, counts: dict[str, int], condense_mode: str = "full"
    ) -> None:
        """Evaluate one numpy batch of template pairs and condense into ``out``."""
        i, j = triangular_index_to_pair(k)
        values = self.evaluate_pairs(i, j, counts=counts)
        self._condense(i, j, values, out, condense_mode)

    def evaluate_pairs(
        self, i: np.ndarray, j: np.ndarray, counts: dict[str, int] | None = None
    ) -> np.ndarray:
        """Galerkin integrals of arbitrary template pairs ``(i[p], j[p])``.

        The pairs need not come from the triangular iteration space: the
        hierarchical compression of :mod:`repro.compress` samples scattered
        rows and columns of the condensed matrix through this entry point.
        The values include the kernel prefactor and are identical (to
        round-off) with per-pair :meth:`GalerkinIntegrator.template_pair`
        calls.
        """
        return self.core.evaluate_pairs(i, j, counts=counts)

    def _condense(
        self,
        i: np.ndarray,
        j: np.ndarray,
        values: np.ndarray,
        out: np.ndarray,
        condense_mode: str,
    ) -> None:
        """Accumulate evaluated template pairs into the condensed matrix."""
        arrays = self.arrays
        rows = arrays.owner[i]
        cols = arrays.owner[j]
        off_diagonal = i != j
        if condense_mode == "full":
            np.add.at(out, (rows, cols), values)
            np.add.at(out, (cols[off_diagonal], rows[off_diagonal]), values[off_diagonal])
        else:
            # Algorithm 1: off-diagonal template pairs condensing onto the
            # diagonal of P contribute twice.
            doubled = np.where(off_diagonal & (rows == cols), 2.0 * values, values)
            np.add.at(out, (rows, cols), doubled)
