"""Index mapping and flattened template arrays for the system setup.

Algorithm 1 iterates the upper triangle of the template matrix ``P~`` with a
single index ``k`` running from ``0`` to ``M(M+1)/2 - 1``; each ``k`` is
converted to the template pair ``(i, j)`` and then, through the ownership
array ``l``, to the basis pair ``(i', j')`` of the condensed matrix ``P``.
This module provides the (vectorised) conversions and the structure-of-arrays
representation of the template list that the batch assembler operates on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.basis.functions import BasisSet
from repro.basis.templates import TemplateInstance

__all__ = [
    "num_template_pairs",
    "triangular_index_to_pair",
    "pair_to_triangular_index",
    "TemplateArrays",
]


def num_template_pairs(num_templates: int) -> int:
    """Size of the iteration space, ``K = M (M + 1) / 2``."""
    if num_templates < 0:
        raise ValueError(f"num_templates must be >= 0, got {num_templates}")
    return num_templates * (num_templates + 1) // 2


def triangular_index_to_pair(k: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Convert linear upper-triangle indices to template pairs ``(i, j)``.

    The enumeration matches Algorithm 1: ``j`` is the column, ``i <= j`` the
    row, and ``k = j (j + 1) / 2 + i``.  Uses integer-safe arithmetic (the
    float square root is only a seed that is then corrected), so it is exact
    for any ``k`` representable as an int64.
    """
    k = np.asarray(k, dtype=np.int64)
    if np.any(k < 0):
        raise ValueError("triangular indices must be non-negative")
    j = np.floor((np.sqrt(8.0 * k.astype(float) + 1.0) - 1.0) / 2.0).astype(np.int64)
    # Correct any float rounding at the block boundaries.
    j = np.where(j * (j + 1) // 2 > k, j - 1, j)
    j = np.where((j + 1) * (j + 2) // 2 <= k, j + 1, j)
    i = k - j * (j + 1) // 2
    return i, j


def pair_to_triangular_index(i: np.ndarray, j: np.ndarray) -> np.ndarray:
    """Inverse of :func:`triangular_index_to_pair` (requires ``i <= j``)."""
    i = np.asarray(i, dtype=np.int64)
    j = np.asarray(j, dtype=np.int64)
    if np.any(i > j):
        raise ValueError("pair_to_triangular_index requires i <= j")
    if np.any(i < 0):
        raise ValueError("indices must be non-negative")
    return j * (j + 1) // 2 + i


@dataclass
class TemplateArrays:
    """Structure-of-arrays view of the flattened template list.

    Attributes
    ----------
    owner:
        ``owner[t]`` is the basis-function index of template ``t`` (the
        array ``l`` of Algorithm 1).
    normal_axis, offset:
        Panel plane description per template.
    lo, hi:
        3-D bounding boxes (the in-plane extents plus the degenerate normal
        coordinate), shape ``(M, 3)``.
    centroid:
        Panel centroids, shape ``(M, 3)``.
    area, diagonal, moment:
        Panel area, panel diagonal and template moment ``\\int T ds``.
    has_profile:
        Whether the template carries an arch profile.
    templates:
        The original :class:`TemplateInstance` objects (needed for the
        per-pair fallback path of profiled templates).
    """

    owner: np.ndarray
    normal_axis: np.ndarray
    offset: np.ndarray
    lo: np.ndarray
    hi: np.ndarray
    centroid: np.ndarray
    area: np.ndarray
    diagonal: np.ndarray
    moment: np.ndarray
    has_profile: np.ndarray
    templates: list[TemplateInstance]

    # ------------------------------------------------------------------
    @classmethod
    def from_basis_set(cls, basis_set: BasisSet) -> "TemplateArrays":
        """Flatten a basis set into template arrays."""
        templates, owner = basis_set.flattened_templates()
        return cls.from_templates(templates, owner)

    @classmethod
    def from_templates(
        cls, templates: Sequence[TemplateInstance], owner: np.ndarray
    ) -> "TemplateArrays":
        """Build the arrays from an explicit template list and ownership map."""
        templates = list(templates)
        count = len(templates)
        owner = np.asarray(owner, dtype=np.intp)
        if owner.shape != (count,):
            raise ValueError("owner must have one entry per template")

        normal_axis = np.empty(count, dtype=np.intp)
        offset = np.empty(count)
        lo = np.empty((count, 3))
        hi = np.empty((count, 3))
        centroid = np.empty((count, 3))
        area = np.empty(count)
        diagonal = np.empty(count)
        moment = np.empty(count)
        has_profile = np.zeros(count, dtype=bool)

        for t, template in enumerate(templates):
            panel = template.panel
            normal_axis[t] = panel.normal_axis
            offset[t] = panel.offset
            panel_lo, panel_hi = panel.bounds()
            lo[t] = panel_lo
            hi[t] = panel_hi
            centroid[t] = panel.centroid
            area[t] = panel.area
            diagonal[t] = panel.diagonal
            moment[t] = template.moment()
            has_profile[t] = not template.is_flat

        return cls(
            owner=owner,
            normal_axis=normal_axis,
            offset=offset,
            lo=lo,
            hi=hi,
            centroid=centroid,
            area=area,
            diagonal=diagonal,
            moment=moment,
            has_profile=has_profile,
            templates=templates,
        )

    # ------------------------------------------------------------------
    @property
    def num_templates(self) -> int:
        """Number of templates ``M``."""
        return len(self.templates)

    @property
    def num_basis_functions(self) -> int:
        """Number of basis functions ``N`` (condensed matrix dimension)."""
        return int(self.owner.max()) + 1 if self.owner.size else 0

    @property
    def num_pairs(self) -> int:
        """Iteration-space size ``K = M (M + 1) / 2``."""
        return num_template_pairs(self.num_templates)

    def tangential_axes(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-template u and v axis indices."""
        u_axis = np.where(self.normal_axis == 0, 1, 0)
        v_axis = np.where(self.normal_axis == 2, 1, 2)
        return u_axis, v_axis
