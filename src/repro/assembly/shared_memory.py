"""Shared-memory (OpenMP-like) system-setup flow (paper Section 5.1, Figure 4).

The template definitions and the output matrix ``P`` live in shared memory;
``D`` workers each compute the entries of ``P~`` in their partition within
private memory and add the result into ``P``.  Two execution modes are
provided:

* ``use_processes=False`` (default): the partitions are executed one after
  another in the current process, and the per-partition wall-clock times are
  recorded.  This is the mode used by the *simulated parallel machine*
  (:mod:`repro.parallel.machine`) -- it reproduces the exact work division
  and load balance of the parallel run, which is what determines the
  speedup/efficiency figures, without requiring more physical cores than the
  host has (the evaluation container has a single core, see DESIGN.md).
* ``use_processes=True``: the partitions are executed by a
  ``multiprocessing`` pool (one OS process per node), each worker returning
  its private partial matrix which the main process accumulates -- the
  functional equivalent of the OpenMP flow of Figure 4.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field

import numpy as np

from repro.assembly.batch import BatchGalerkinAssembler, ChunkResult
from repro.assembly.partition import WorkPartition, partition_range
from repro.basis.functions import BasisSet
from repro.greens.policy import ApproximationPolicy
from repro.obs.trace import span

__all__ = ["ParallelSetupResult", "SharedMemoryAssembler"]


@dataclass
class ParallelSetupResult:
    """Result of a parallel system-setup run.

    Attributes
    ----------
    matrix:
        The condensed system matrix ``P``.
    node_results:
        One :class:`ChunkResult` per node (workload and measured time).
    communication_bytes:
        Bytes each non-main node sends to the main process (zero in the
        shared-memory flow; the partial-matrix size in the distributed flow).
    """

    matrix: np.ndarray
    node_results: list[ChunkResult] = field(default_factory=list)
    communication_bytes: list[int] = field(default_factory=list)

    @property
    def num_nodes(self) -> int:
        """Number of parallel nodes used."""
        return len(self.node_results)

    @property
    def max_node_seconds(self) -> float:
        """Compute time of the slowest node (the parallel critical path)."""
        return max((r.elapsed_seconds for r in self.node_results), default=0.0)

    @property
    def total_node_seconds(self) -> float:
        """Sum of all node compute times (the serial work)."""
        return sum(r.elapsed_seconds for r in self.node_results)

    @property
    def load_imbalance(self) -> float:
        """Ratio of the slowest node time to the mean node time (1.0 = perfect)."""
        if not self.node_results:
            return 1.0
        mean = self.total_node_seconds / self.num_nodes
        return self.max_node_seconds / mean if mean > 0.0 else 1.0


def _shared_worker(args) -> tuple[np.ndarray, ChunkResult]:
    """Process-pool worker: assemble one partition into a private matrix."""
    (
        basis_set,
        permittivity,
        policy,
        order_near,
        order_far,
        batch_size,
        near_field,
        use_numba,
        start,
        stop,
    ) = args
    assembler = BatchGalerkinAssembler(
        basis_set,
        permittivity,
        policy=policy,
        order_near=order_near,
        order_far=order_far,
        batch_size=batch_size,
        near_field=near_field,
        use_numba=use_numba,
    )
    return assembler.assemble_chunk(start, stop)


class SharedMemoryAssembler:
    """OpenMP-like parallel assembler.

    Parameters
    ----------
    basis_set, permittivity, policy, collocation_fn, order_near, order_far, batch_size:
        Forwarded to :class:`~repro.assembly.batch.BatchGalerkinAssembler`.
    num_nodes:
        Number of parallel computing nodes ``D``.
    use_processes:
        Execute partitions in a real process pool instead of sequentially.
        Note that accelerated ``collocation_fn`` objects are not forwarded to
        worker processes (their tables would be rebuilt per process); the
        process mode always uses the exact closed forms.
    """

    def __init__(
        self,
        basis_set: BasisSet,
        permittivity: float,
        num_nodes: int = 1,
        policy: ApproximationPolicy | None = None,
        collocation_fn=None,
        order_near: int = 6,
        order_far: int = 3,
        batch_size: int = 200_000,
        near_field: str = "exact",
        use_numba: bool | None = None,
        use_processes: bool = False,
    ):
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        self.basis_set = basis_set
        self.permittivity = float(permittivity)
        self.num_nodes = int(num_nodes)
        self.policy = policy
        self.order_near = int(order_near)
        self.order_far = int(order_far)
        self.batch_size = int(batch_size)
        self.near_field = str(near_field)
        self.use_numba = use_numba
        self.use_processes = bool(use_processes)
        self.assembler = BatchGalerkinAssembler(
            basis_set,
            permittivity,
            policy=policy,
            collocation_fn=collocation_fn,
            order_near=order_near,
            order_far=order_far,
            batch_size=batch_size,
            near_field=near_field,
            use_numba=use_numba,
        )

    # ------------------------------------------------------------------
    def partitions(self) -> list[WorkPartition]:
        """Equal division of the iteration space over the nodes."""
        return partition_range(self.assembler.num_pairs, self.num_nodes)

    def assemble(self) -> ParallelSetupResult:
        """Run the shared-memory system-setup flow."""
        with span("assembly.assemble", flow="shared_memory", nodes=self.num_nodes):
            if self.use_processes and self.num_nodes > 1:
                return self._assemble_with_processes()
            return self._assemble_sequentially()

    # ------------------------------------------------------------------
    def _assemble_sequentially(self) -> ParallelSetupResult:
        """Execute every partition in-process, recording per-partition times."""
        n = self.assembler.num_basis_functions
        matrix = np.zeros((n, n))
        node_results: list[ChunkResult] = []
        for part in self.partitions():
            _, result = self.assembler.assemble_chunk(part.start, part.stop, out=matrix)
            node_results.append(result)
        return ParallelSetupResult(
            matrix=matrix,
            node_results=node_results,
            communication_bytes=[0] * self.num_nodes,
        )

    def _assemble_with_processes(self) -> ParallelSetupResult:
        """Execute the partitions in a multiprocessing pool (Figure 4 flow)."""
        parts = self.partitions()
        jobs = [
            (
                self.basis_set,
                self.permittivity,
                self.policy,
                self.order_near,
                self.order_far,
                self.batch_size,
                self.near_field,
                self.use_numba,
                part.start,
                part.stop,
            )
            for part in parts
        ]
        n = self.assembler.num_basis_functions
        matrix = np.zeros((n, n))
        node_results: list[ChunkResult] = []
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=min(self.num_nodes, len(jobs))) as pool:
            for partial, result in pool.map(_shared_worker, jobs):
                matrix += partial
                node_results.append(result)
        return ParallelSetupResult(
            matrix=matrix,
            node_results=node_results,
            communication_bytes=[0] * self.num_nodes,
        )
