"""Reference (per-pair) implementation of the system-setup inner loop.

This is Algorithm 1 written as plainly as possible: loop over the linear
index ``k``, convert to the template pair, evaluate the Galerkin integral
with :class:`~repro.greens.galerkin.GalerkinIntegrator`, and condense into
``P``.  It deliberately shares no code with the batched kernel core of
:mod:`repro.greens.batched` above the innermost closed forms, which makes
it the independent per-pair correctness oracle for the vectorised
:class:`~repro.assembly.batch.BatchGalerkinAssembler` (and for every
backend built on it); large problems use the batch assembler.
"""

from __future__ import annotations

import numpy as np

from repro.assembly.mapping import TemplateArrays, triangular_index_to_pair
from repro.basis.functions import BasisSet
from repro.greens.galerkin import GalerkinIntegrator
from repro.greens.policy import ApproximationPolicy

__all__ = ["SerialAssembler"]


class SerialAssembler:
    """Per-pair assembler of the condensed system matrix ``P``.

    Parameters
    ----------
    basis_set:
        The instantiated basis functions.
    permittivity:
        Absolute permittivity of the medium.
    policy:
        Approximation-distance policy shared with the integrator.
    collocation_fn:
        Optional accelerated collocation evaluator (Section 4.2 techniques).
    """

    def __init__(
        self,
        basis_set: BasisSet,
        permittivity: float,
        policy: ApproximationPolicy | None = None,
        collocation_fn=None,
        order_near: int = 6,
        order_far: int = 3,
    ):
        self.basis_set = basis_set
        self.arrays = TemplateArrays.from_basis_set(basis_set)
        self.integrator = GalerkinIntegrator(
            permittivity,
            policy=policy,
            collocation_fn=collocation_fn,
            order_near=order_near,
            order_far=order_far,
        )

    # ------------------------------------------------------------------
    @property
    def num_pairs(self) -> int:
        """Iteration-space size ``K``."""
        return self.arrays.num_pairs

    def assemble_chunk(self, start: int, stop: int, out: np.ndarray | None = None) -> np.ndarray:
        """Assemble the contribution of the index range ``[start, stop)``.

        Returns the (possibly pre-allocated) ``N x N`` matrix with the chunk
        contribution added.
        """
        n = self.arrays.num_basis_functions
        if out is None:
            out = np.zeros((n, n))
        if not (0 <= start <= stop <= self.num_pairs):
            raise ValueError(f"invalid chunk [{start}, {stop}) for K={self.num_pairs}")
        owner = self.arrays.owner
        templates = self.arrays.templates
        for k in range(start, stop):
            i, j = triangular_index_to_pair(np.asarray([k]))
            i, j = int(i[0]), int(j[0])
            template_i = templates[i]
            template_j = templates[j]
            value = self.integrator.template_pair(
                template_i.panel,
                template_j.panel,
                template_i.profile,
                template_j.profile,
            )
            row, col = int(owner[i]), int(owner[j])
            if i == j:
                out[row, col] += value
            else:
                out[row, col] += value
                out[col, row] += value
        return out

    def assemble(self) -> np.ndarray:
        """Assemble the full matrix ``P``."""
        return self.assemble_chunk(0, self.num_pairs)
