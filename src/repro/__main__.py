"""``python -m repro`` -- the unified extraction engine CLI."""

import sys

from repro.engine.cli import main

if __name__ == "__main__":
    sys.exit(main())
