"""Zero-dependency span tracer with ``contextvars`` propagation.

A *trace* is the tree of timed phases behind one logical operation (one
HTTP request, one profile run): ``serve.request -> shard.dispatch ->
engine.extract -> assembly.* -> solver.*``.  Spans are plain context
managers reading :func:`repro.obs.clock.now`; nesting comes from a
``contextvars`` variable, so the tree assembles itself across ``await``
boundaries and -- with the two explicit helpers below -- across thread
pools and worker tasks:

* :func:`propagate` wraps a callable so it runs under a copy of the
  caller's context (``loop.run_in_executor`` and
  ``ThreadPoolExecutor.submit`` do not propagate context by themselves);
* :func:`carrier` / :func:`attach` hand the active trace to code running
  in a *different* task's context (the shard worker tasks of the server,
  which are created long before any request exists).

Fork-pool workers cannot share the in-process trace object; their wall
times travel back over the pipe as plain floats (the existing worker-tuple
idiom) and are re-attached as synthesized spans via :func:`record_span`.

Outside an active trace every helper is a cheap no-op: :func:`span`
returns a shared inert object, so permanently instrumented hot paths cost
one context-variable read when nobody is tracing.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, TypeVar

from repro.obs.clock import now

__all__ = [
    "Span",
    "SpanCarrier",
    "Trace",
    "span",
    "traced",
    "start_trace",
    "current_trace",
    "current_trace_id",
    "carrier",
    "attach",
    "propagate",
    "record_span",
]

T = TypeVar("T")


@dataclass
class Span:
    """One timed phase: name, ids, clock readings and free-form attributes."""

    name: str
    span_id: str
    parent_id: str | None
    start: float
    end: float | None = None
    status: str = "ok"
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """Duration so far (open spans measure against the current clock)."""
        return (self.end if self.end is not None else now()) - self.start


class Trace:
    """One span tree: thread-safe collector plus the tree/report views."""

    def __init__(self, trace_id: str | None = None):
        #: Hex identifier echoed in responses and stamped on log lines.
        self.trace_id = trace_id or os.urandom(8).hex()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._ids = itertools.count(1)

    def new_span_id(self) -> str:
        """A per-trace unique span id (monotonic, so ids read in creation order)."""
        return f"{next(self._ids):04x}"

    def add(self, item: Span) -> None:
        """Register a span (called on *entry*, so open spans are visible)."""
        with self._lock:
            self._spans.append(item)

    @property
    def spans(self) -> list[Span]:
        """Snapshot of the registered spans in creation order."""
        with self._lock:
            return list(self._spans)

    # ------------------------------------------------------------------
    def tree(self) -> list[dict[str, Any]]:
        """The nested span tree as JSON-ready dictionaries.

        Returns a list of root nodes (a served request has exactly one:
        its ``serve.request`` span).  Spans still open when the tree is
        built report their duration so far.
        """
        spans = self.spans
        known = {item.span_id for item in spans}
        origin = min((item.start for item in spans), default=0.0)
        children: dict[str | None, list[Span]] = {}
        for item in spans:
            parent = item.parent_id if item.parent_id in known else None
            children.setdefault(parent, []).append(item)

        def node(item: Span) -> dict[str, Any]:
            return {
                "name": item.name,
                "span_id": item.span_id,
                "seconds": item.seconds,
                "start_offset_seconds": item.start - origin,
                "status": item.status,
                "attributes": dict(item.attributes),
                "children": [
                    node(child)
                    for child in sorted(children.get(item.span_id, []), key=lambda s: s.start)
                ],
            }

        return [node(item) for item in sorted(children.get(None, []), key=lambda s: s.start)]

    def render(self) -> str:
        """Indented text rendering of the span tree (the profile report)."""
        lines: list[str] = [f"trace {self.trace_id}"]

        def walk(entry: dict[str, Any], depth: int) -> None:
            marker = " [error]" if entry["status"] != "ok" else ""
            attrs = entry["attributes"]
            suffix = f"  {attrs}" if attrs else ""
            lines.append(f"{'  ' * depth}{entry['name']:<28} {entry['seconds'] * 1e3:9.2f} ms{marker}{suffix}")
            for child in entry["children"]:
                walk(child, depth + 1)

        for root in self.tree():
            walk(root, 1)
        return "\n".join(lines)

    def phase_seconds(self) -> dict[str, float]:
        """Total seconds per span name (the paper's Table-style breakdown)."""
        totals: dict[str, float] = {}
        for item in self.spans:
            totals[item.name] = totals.get(item.name, 0.0) + item.seconds
        return totals


@dataclass(frozen=True)
class SpanCarrier:
    """A portable handle on the active trace: trace object + parent span id.

    Created by :func:`carrier` in the originating context and re-activated
    with :func:`attach` in whatever task or thread picks the work up.
    """

    trace: Trace
    parent_id: str | None


#: The active (trace, current span id) of this task/thread context.
_ACTIVE: contextvars.ContextVar[tuple[Trace, str | None] | None] = contextvars.ContextVar(
    "repro_obs_active_trace", default=None
)


class _NoopSpan:
    """Shared inert context manager handed out when no trace is active."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NOOP = _NoopSpan()


class _SpanContext:
    """Context manager opening one span under the active trace."""

    __slots__ = ("_trace", "_name", "_attributes", "_token", "span")

    def __init__(self, trace: Trace, parent_id: str | None, name: str, attributes: dict[str, Any]):
        self._trace = trace
        self._name = name
        self._attributes = attributes
        self._token: contextvars.Token | None = None
        self.span = Span(
            name=name,
            span_id=trace.new_span_id(),
            parent_id=parent_id,
            start=0.0,
            attributes=attributes,
        )

    def __enter__(self) -> Span:
        self.span.start = now()
        self._trace.add(self.span)
        self._token = _ACTIVE.set((self._trace, self.span.span_id))
        return self.span

    def __exit__(self, exc_type: type | None, exc: BaseException | None, _tb: object) -> bool:
        self.span.end = now()
        if exc_type is not None:
            self.span.status = "error"
            self.span.attributes.setdefault("error", f"{exc_type.__name__}: {exc}")
        if self._token is not None:
            _ACTIVE.reset(self._token)
        return False


def span(name: str, **attributes: Any) -> _SpanContext | _NoopSpan:
    """Open a child span of the current one; inert outside an active trace.

    Example
    -------
    >>> with start_trace() as trace:
    ...     with span("assembly.build", blocks=4):
    ...         pass
    >>> [s.name for s in trace.spans]
    ['trace', 'assembly.build']
    """
    active = _ACTIVE.get()
    if active is None:
        return _NOOP
    trace, parent_id = active
    return _SpanContext(trace, parent_id, name, attributes)


def traced(name: str | None = None) -> Callable[[Callable[..., T]], Callable[..., T]]:
    """Decorator form of :func:`span` (span name defaults to the function name)."""

    def decorate(function: Callable[..., T]) -> Callable[..., T]:
        span_name = name or function.__qualname__

        def wrapper(*args: Any, **kwargs: Any) -> T:
            with span(span_name):
                return function(*args, **kwargs)

        wrapper.__name__ = function.__name__
        wrapper.__qualname__ = function.__qualname__
        wrapper.__doc__ = function.__doc__
        return wrapper

    return decorate


class _TraceContext:
    """Context manager owning a whole trace (creates the root span)."""

    __slots__ = ("_name", "_trace_id", "_attributes", "_inner", "trace")

    def __init__(self, name: str, trace_id: str | None, attributes: dict[str, Any]):
        self._name = name
        self._trace_id = trace_id
        self._attributes = attributes
        self._inner: _SpanContext | None = None
        self.trace: Trace | None = None

    def __enter__(self) -> Trace:
        self.trace = Trace(trace_id=self._trace_id)
        self._inner = _SpanContext(self.trace, None, self._name, self._attributes)
        # The root span must carry no parent even if an outer trace exists,
        # so activate it against a cleared context explicitly.
        self._inner.__enter__()
        return self.trace

    def __exit__(self, exc_type: type | None, exc: BaseException | None, tb: object) -> bool:
        assert self._inner is not None
        return self._inner.__exit__(exc_type, exc, tb)


def start_trace(
    name: str = "trace", trace_id: str | None = None, **attributes: Any
) -> _TraceContext:
    """Begin a new trace whose root span is ``name``; yields the :class:`Trace`."""
    return _TraceContext(name, trace_id, attributes)


def current_trace() -> Trace | None:
    """The active trace of this context, or ``None``."""
    active = _ACTIVE.get()
    return active[0] if active is not None else None


def current_trace_id() -> str | None:
    """The active trace id (log stamping), or ``None``."""
    trace = current_trace()
    return trace.trace_id if trace is not None else None


def carrier() -> SpanCarrier | None:
    """A handle on the active trace for hand-off to another task or thread."""
    active = _ACTIVE.get()
    if active is None:
        return None
    return SpanCarrier(trace=active[0], parent_id=active[1])


class _AttachContext:
    """Re-activate a carried trace in the receiving task/thread context."""

    __slots__ = ("_carrier", "_token")

    def __init__(self, handle: SpanCarrier | None):
        self._carrier = handle
        self._token: contextvars.Token | None = None

    def __enter__(self) -> None:
        if self._carrier is not None:
            self._token = _ACTIVE.set((self._carrier.trace, self._carrier.parent_id))
        return None

    def __exit__(self, *exc_info: object) -> bool:
        if self._token is not None:
            _ACTIVE.reset(self._token)
        return False


def attach(handle: SpanCarrier | None) -> _AttachContext:
    """Context manager adopting a carried trace (no-op for ``None``)."""
    return _AttachContext(handle)


def propagate(function: Callable[..., T], *args: Any, **kwargs: Any) -> Callable[[], T]:
    """Bind a callable to a copy of the caller's context.

    ``loop.run_in_executor`` and ``ThreadPoolExecutor.submit`` run their
    callables with an empty context; wrapping the submission in
    ``propagate`` keeps the active trace (and any other context variables)
    visible inside the worker thread.
    """
    context = contextvars.copy_context()
    return lambda: context.run(function, *args, **kwargs)


def record_span(name: str, seconds: float, **attributes: Any) -> None:
    """Attach an already-measured duration as a finished child span.

    Used where the timing was taken somewhere the trace cannot reach -- a
    fork-pool worker shipping its wall time back over the pipe -- so the
    span tree still accounts for the work.  The span is anchored ending
    now, i.e. ``[now - seconds, now]``.  No-op outside an active trace.
    """
    active = _ACTIVE.get()
    if active is None:
        return
    trace, parent_id = active
    end = now()
    trace.add(
        Span(
            name=name,
            span_id=trace.new_span_id(),
            parent_id=parent_id,
            start=end - seconds,
            end=end,
            attributes=attributes,
        )
    )
