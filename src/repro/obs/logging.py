"""Structured JSON log lines, stamped with the active trace id.

One line per record, machine-parseable, human-skimmable::

    {"level": "info", "logger": "repro.serve", "message": "request served",
     "route": "/v1/extract", "status": 200, "trace_id": "9f0a...", "ts": ...}

:func:`configure_logging` installs the formatter once on the ``repro``
logger hierarchy (idempotent -- safe to call from the CLI and from tests);
:func:`get_logger` hands out namespaced loggers.  Extra keyword context
travels through the stdlib ``extra=`` mechanism and lands as top-level
JSON fields, so call sites stay plain ``logging`` calls with no custom
API to learn.
"""

from __future__ import annotations

import datetime
import io
import json
import logging
from typing import Any

from repro.obs.trace import current_trace_id

__all__ = ["JsonLogFormatter", "configure_logging", "get_logger"]

#: Root of the package's logger hierarchy.
ROOT_LOGGER = "repro"

#: ``LogRecord`` attributes that are plumbing, not user context.
_RECORD_FIELDS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonLogFormatter(logging.Formatter):
    """Format every record as one JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": datetime.datetime.fromtimestamp(
                record.created, tz=datetime.timezone.utc
            ).isoformat(timespec="milliseconds"),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        trace_id = current_trace_id()
        if trace_id is not None:
            payload["trace_id"] = trace_id
        for key, value in record.__dict__.items():
            if key not in _RECORD_FIELDS and not key.startswith("_"):
                payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def configure_logging(level: int | str = logging.INFO, stream: io.TextIOBase | None = None) -> logging.Logger:
    """Install the JSON formatter on the ``repro`` logger (idempotent).

    Returns the configured root logger.  A second call only adjusts the
    level, so the CLI, the server and the tests can all call it freely
    without stacking handlers (and duplicating every line).
    """
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(level)
    for handler in logger.handlers:
        if isinstance(handler.formatter, JsonLogFormatter):
            handler.setLevel(level)
            return logger
    handler = logging.StreamHandler(stream)  # None -> stderr
    handler.setLevel(level)
    handler.setFormatter(JsonLogFormatter())
    logger.addHandler(handler)
    logger.propagate = False
    return logger


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``get_logger("serve")``)."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")
