"""Observability substrate: spans, metrics and structured logs.

The paper's whole scalability argument rests on per-phase wall-time
breakdowns (assembly vs. solve vs. communication); :mod:`repro.obs` turns
those one-off measurements into a first-class layer shared by the engine,
the solvers and the serving front-end:

* :mod:`repro.obs.clock` -- the one monotonic clock every timing number in
  the repo is taken from, so bench artifacts and spans agree;
* :mod:`repro.obs.trace` -- a zero-dependency span tracer: context-manager
  spans with parent/child nesting, ``contextvars`` propagation across
  asyncio tasks and thread pools, and a JSON-ready span tree per trace;
* :mod:`repro.obs.metrics` -- process-wide counters, gauges and fixed-bucket
  histograms rendered in the Prometheus text exposition format (the
  ``GET /metrics`` endpoint of the extraction server);
* :mod:`repro.obs.logging` -- a JSON line formatter stamping every record
  with the active trace id;
* :mod:`repro.obs.profile` -- the ``python -m repro profile`` harness: one
  workload run under the tracer, reported as a span-tree breakdown and
  written to ``BENCH_profile.json``.

Everything is stdlib-only and costs near nothing when idle: a span outside
an active trace is a shared no-op object, and a disabled metrics registry
short-circuits before touching any state.
"""

from repro.obs.clock import now
from repro.obs.logging import JsonLogFormatter, configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    counter,
    gauge,
    histogram,
    render_metrics,
    set_metrics_enabled,
)
from repro.obs.trace import (
    Span,
    SpanCarrier,
    Trace,
    attach,
    carrier,
    current_trace,
    current_trace_id,
    propagate,
    record_span,
    span,
    start_trace,
    traced,
)

__all__ = [
    "now",
    "Span",
    "SpanCarrier",
    "Trace",
    "span",
    "traced",
    "start_trace",
    "current_trace",
    "current_trace_id",
    "carrier",
    "attach",
    "propagate",
    "record_span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "render_metrics",
    "set_metrics_enabled",
    "JsonLogFormatter",
    "configure_logging",
    "get_logger",
]
