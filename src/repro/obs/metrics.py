"""Process-wide metrics registry with Prometheus text exposition.

Counters, gauges and fixed-bucket histograms, registered once at the hot
seams of the stack (queue depth and wait, cache hits per layer, kernel
pair batches, GMRES iterations, per-shard inflight) and scraped through
``GET /metrics`` on the extraction server.  Stdlib-only by design: the
exposition format is a stable text protocol, not a client-library
contract.

Instruments are get-or-create by name, so modules declare what they
observe at import time and repeated imports share state.  A disabled
registry (``set_metrics_enabled(False)`` or ``REPRO_OBS=0`` in the
environment) short-circuits every observation before it touches any
state -- the documented way to take observability out of a benchmark.

Label values arrive as keyword arguments and must match the instrument's
declared label names exactly; an instrument with no labels is observed
with no keywords.  All mutation is lock-guarded: observations land from
asyncio worker tasks, shard executor threads and the assembly pools
alike.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Iterable, Mapping

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "render_metrics",
    "set_metrics_enabled",
]

#: Fixed latency buckets (seconds): sub-millisecond cache hits through
#: multi-second full-size extractions.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_LabelKey = tuple[str, ...]


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labelnames: tuple[str, ...], key: _LabelKey, extra: str = "") -> str:
    """Render ``{a="x",b="y"}`` (or ``""`` when there are no labels)."""
    parts = [f'{name}="{_escape_label_value(value)}"' for name, value in zip(labelnames, key)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Instrument:
    """Shared bookkeeping of the three instrument kinds."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help_text: str, labelnames: Iterable[str]):
        self.name = name
        self.help = help_text
        self.labelnames: tuple[str, ...] = tuple(labelnames)
        self._registry = registry
        self._lock = threading.Lock()

    def _label_key(self, labels: Mapping[str, str]) -> _LabelKey:
        if tuple(sorted(labels)) != tuple(sorted(self.labelnames)):
            raise ValueError(
                f"metric {self.name!r} takes labels {sorted(self.labelnames)}, got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    # Subclasses render their sample lines.
    def _sample_lines(self) -> list[str]:  # pragma: no cover - overridden
        raise NotImplementedError

    def render(self) -> list[str]:
        """The ``# HELP``/``# TYPE`` header plus every sample line."""
        return [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}", *self._sample_lines()]


class Counter(_Instrument):
    """Monotonically increasing count (name ends ``_total`` by convention)."""

    kind = "counter"

    def __init__(self, registry: "MetricsRegistry", name: str, help_text: str, labelnames: Iterable[str]):
        super().__init__(registry, name, help_text, labelnames)
        self._values: dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc by {amount})")
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of the labelled series (0 when never observed)."""
        with self._lock:
            return self._values.get(self._label_key(labels), 0.0)

    def _sample_lines(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [f"{self.name}{_format_labels(self.labelnames, key)} {value}" for key, value in items]


class Gauge(_Instrument):
    """A value that goes up and down (queue depth, inflight requests)."""

    kind = "gauge"

    def __init__(self, registry: "MetricsRegistry", name: str, help_text: str, labelnames: Iterable[str]):
        super().__init__(registry, name, help_text, labelnames)
        self._values: dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        """Set the labelled series to ``value``."""
        if not self._registry.enabled:
            return
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (may be negative) to the labelled series."""
        if not self._registry.enabled:
            return
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        """Subtract ``amount`` from the labelled series."""
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        """Current value of the labelled series (0 when never set)."""
        with self._lock:
            return self._values.get(self._label_key(labels), 0.0)

    def _sample_lines(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [f"{self.name}{_format_labels(self.labelnames, key)} {value}" for key, value in items]


class Histogram(_Instrument):
    """Fixed-bucket distribution (cumulative buckets, ``_sum`` and ``_count``)."""

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        labelnames: Iterable[str],
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(registry, name, help_text, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name!r} has duplicate bucket bounds")
        self.buckets = bounds
        #: per label key: [per-bucket counts..., +Inf count], sum
        self._counts: dict[_LabelKey, list[int]] = {}
        self._sums: dict[_LabelKey, float] = {}

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation into the labelled distribution."""
        if not self._registry.enabled:
            return
        key = self._label_key(labels)
        value = float(value)
        with self._lock:
            counts = self._counts.setdefault(key, [0] * (len(self.buckets) + 1))
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
                    break
            else:
                counts[-1] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value

    def count(self, **labels: str) -> int:
        """Total observations of the labelled series."""
        with self._lock:
            return sum(self._counts.get(self._label_key(labels), []))

    def _sample_lines(self) -> list[str]:
        with self._lock:
            items = sorted((key, list(counts), self._sums[key]) for key, counts in self._counts.items())
        lines: list[str] = []
        for key, counts, total in items:
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, counts):
                cumulative += bucket_count
                labels = _format_labels(self.labelnames, key, extra=f'le="{bound}"')
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            cumulative += counts[-1]
            labels = _format_labels(self.labelnames, key, extra='le="+Inf"')
            lines.append(f"{self.name}_bucket{labels} {cumulative}")
            plain = _format_labels(self.labelnames, key)
            lines.append(f"{self.name}_sum{plain} {total}")
            lines.append(f"{self.name}_count{plain} {cumulative}")
        return lines


class MetricsRegistry:
    """Get-or-create instrument registry with one text exposition view."""

    def __init__(self, enabled: bool | None = None):
        if enabled is None:
            enabled = os.environ.get("REPRO_OBS", "1") not in ("0", "false", "off")
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    def __repr__(self) -> str:  # address-free: rendered into generated docs
        return f"{type(self).__name__}()"

    # ------------------------------------------------------------------
    def set_enabled(self, enabled: bool) -> None:
        """Turn observation on/off globally (instruments keep their state)."""
        self.enabled = bool(enabled)

    def _get_or_create(self, cls: type, name: str, help_text: str, labelnames: Iterable[str], **kwargs: Any):
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as {type(existing).__name__}"
                        f"{existing.labelnames}, requested {cls.__name__}{labelnames}"
                    )
                return existing
            instrument = cls(self, name, help_text, labelnames, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help_text: str, labelnames: Iterable[str] = ()) -> Counter:
        """Get-or-create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str, labelnames: Iterable[str] = ()) -> Gauge:
        """Get-or-create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Get-or-create a :class:`Histogram` (fixed latency buckets by default)."""
        return self._get_or_create(Histogram, name, help_text, labelnames, buckets=buckets)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The full Prometheus text exposition (one block per instrument)."""
        with self._lock:
            instruments = [self._instruments[name] for name in sorted(self._instruments)]
        lines: list[str] = []
        for instrument in instruments:
            lines.extend(instrument.render())
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every instrument (tests isolating their observations)."""
        with self._lock:
            self._instruments.clear()


#: The process-wide registry every permanent instrument registers with.
REGISTRY = MetricsRegistry()


def counter(name: str, help_text: str, labelnames: Iterable[str] = ()) -> Counter:
    """Get-or-create a counter on the process-wide :data:`REGISTRY`."""
    return REGISTRY.counter(name, help_text, labelnames)


def gauge(name: str, help_text: str, labelnames: Iterable[str] = ()) -> Gauge:
    """Get-or-create a gauge on the process-wide :data:`REGISTRY`."""
    return REGISTRY.gauge(name, help_text, labelnames)


def histogram(
    name: str,
    help_text: str,
    labelnames: Iterable[str] = (),
    buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
) -> Histogram:
    """Get-or-create a histogram on the process-wide :data:`REGISTRY`."""
    return REGISTRY.histogram(name, help_text, labelnames, buckets=buckets)


def render_metrics() -> str:
    """Prometheus text exposition of the process-wide registry."""
    return REGISTRY.render()


def set_metrics_enabled(enabled: bool) -> None:
    """Enable/disable observation on the process-wide registry."""
    REGISTRY.set_enabled(enabled)
