"""``python -m repro profile``: one workload run under the span tracer.

Runs an extraction through the regular engine service inside a trace,
prints the span-tree report (the paper's per-phase wall-time breakdown,
per request instead of per table) and writes ``BENCH_profile.json``.  The
artifact cross-checks the span timings against the ``SolverTimer`` fields
of the extraction result: both read :func:`repro.obs.clock.now`, so the
``phase.setup``/``phase.solve`` spans and ``setup_seconds``/
``solve_seconds`` must agree -- the recorded relative gap is part of the
payload.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.experiments import ExperimentReport
from repro.obs.trace import start_trace

__all__ = ["BENCH_PROFILE_FILENAME", "run_profile", "write_profile_json"]

#: Default name of the machine-readable profile artifact.
BENCH_PROFILE_FILENAME = "BENCH_profile.json"


def run_profile(
    workload: str = "bus_crossing",
    size: int | None = None,
    backend: str = "instantiable",
    options: dict[str, Any] | None = None,
) -> ExperimentReport:
    """Extract one workload under the tracer and report the span tree.

    Parameters
    ----------
    workload:
        Registered workload family (``python -m repro workloads``).
    size:
        Optional size knob of the family (``None`` uses the quick layout).
    backend:
        Registered backend to profile.
    options:
        Backend options forwarded verbatim (and fingerprinted as usual).
    """
    from repro.engine.service import ExtractionService
    from repro.workloads import get_workload

    family = get_workload(workload)
    layout = family.sized_layout(size) if size is not None else family.layout()
    service = ExtractionService(executor="serial", cache_capacity=0)

    with start_trace("profile", workload=workload, backend=backend) as trace:
        result = service.extract(layout, backend=backend, **dict(options or {}))

    phases = trace.phase_seconds()
    # Span/SolverTimer agreement: both read the obs clock, so the span
    # should only exceed the timer field by the (tiny) span bookkeeping.
    setup_gap = _relative_gap(phases.get("phase.setup", 0.0), result.setup_seconds)
    solve_gap = _relative_gap(phases.get("phase.solve", 0.0), result.solve_seconds)

    data = {
        "workload": workload,
        "size": size,
        "backend": backend,
        "options": dict(options or {}),
        "num_unknowns": result.num_unknowns,
        "trace_id": trace.trace_id,
        "span_tree": trace.tree(),
        "phase_seconds": phases,
        "result_setup_seconds": result.setup_seconds,
        "result_solve_seconds": result.solve_seconds,
        "setup_relative_gap": setup_gap,
        "solve_relative_gap": solve_gap,
    }
    text = "\n".join(
        [
            f"profile: {workload}" + (f" (size {size})" if size is not None else "") + f" via {backend}",
            f"unknowns: {result.num_unknowns}",
            "",
            trace.render(),
            "",
            f"SolverTimer cross-check: setup {result.setup_seconds * 1e3:.2f} ms "
            f"(span gap {setup_gap * 100:.2f}%), solve {result.solve_seconds * 1e3:.2f} ms "
            f"(span gap {solve_gap * 100:.2f}%)",
        ]
    )
    return ExperimentReport(name="profile", text=text, data=data)


def _relative_gap(span_seconds: float, timer_seconds: float) -> float:
    """``|span - timer| / timer`` guarded against zero-duration phases."""
    if timer_seconds <= 0.0:
        return 0.0
    return abs(span_seconds - timer_seconds) / timer_seconds


def write_profile_json(report: ExperimentReport, path: str | Path | None = None) -> Path:
    """Write a profile report's data to ``BENCH_profile.json``."""
    target = Path(path) if path is not None else Path.cwd() / BENCH_PROFILE_FILENAME
    target.write_text(json.dumps(report.data, indent=2, sort_keys=True) + "\n")
    return target
