"""The one monotonic clock behind every timing number in the repo.

Spans, the ``SolverTimer`` phase laps, the batched-kernel chunk timings and
the serve-layer latency measurements all read :func:`now`, so a span's
duration and the corresponding bench-artifact field are taken from the same
clock and agree to measurement noise.  The indirection also gives tests one
seam to monkeypatch when they need deterministic timings.
"""

from __future__ import annotations

import time

__all__ = ["now", "walltime"]


def now() -> float:
    """Monotonic seconds (``time.perf_counter``): durations, never dates."""
    return time.perf_counter()


def walltime() -> float:
    """Wall-clock seconds since the epoch: log timestamps, never durations."""
    return time.time()
