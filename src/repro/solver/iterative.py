"""Krylov iterative solves shared by every iterative backend.

The FASTCAP-like baseline, the parallel Galerkin flows and the compressed
``galerkin-aca`` path all solve their (possibly multi-right-hand-side)
systems through :func:`gmres_solve`.  Two execution modes exist:

* **column mode** — one scipy GMRES solve per right-hand side, the
  historical path.  Every iteration of every column traverses the full
  operator once.
* **blocked mode** — when the caller supplies a ``matmat`` (a multi-vector
  operator product), all right-hand sides iterate in lockstep: each outer
  iteration applies the operator ONCE to the matrix of current Krylov
  vectors of every still-unconverged column.  Each column keeps its own
  Arnoldi basis, Hessenberg factorisation and Givens-rotation residual
  tracking, so convergence is still monitored per column and columns drop
  out of the block as they converge.  For an operator whose cost is
  dominated by traversing stored blocks (the H-matrix, a dense matrix, the
  multipole near field), this shares one traversal across the whole block
  instead of paying one per column — the number of operator *traversals*
  drops from ``sum_j iterations_j`` to ``max_j iterations_j``.

Both modes use the same Jacobi (diagonal-scaling) left preconditioner built
by :func:`jacobi_preconditioner`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy.sparse.linalg import LinearOperator, gmres

from repro.obs import metrics
from repro.obs.trace import span

__all__ = ["IterativeStats", "jacobi_preconditioner", "gmres_solve"]

_SOLVES = metrics.counter("repro_gmres_solves_total", "GMRES solves, by execution mode", ("mode",))
_ITERATIONS = metrics.counter(
    "repro_gmres_iterations_total", "Krylov iterations summed over all right-hand sides", ("mode",)
)
_TRAVERSALS = metrics.counter(
    "repro_gmres_traversals_total", "Operator traversals performed by GMRES solves", ("mode",)
)

#: Multi-vector operator product ``A @ X`` for an ``(n, k)`` block ``X``.
MatMat = Callable[[np.ndarray], np.ndarray]


def jacobi_preconditioner(diagonal: np.ndarray) -> LinearOperator:
    """The Jacobi (diagonal-scaling) preconditioner ``M ~= diag(A)^-1``.

    Every iterative backend — the parallel Galerkin flows, the FASTCAP-like
    baseline and the compressed ``galerkin-aca`` path — builds its GMRES
    preconditioner through this one helper (directly or by passing
    ``diagonal=`` to :func:`gmres_solve`).

    Raises
    ------
    ValueError
        If any diagonal entry is zero or non-finite: inverting it would
        inject ``inf``/``nan`` scaling and let GMRES diverge with no hint of
        the cause, so the offending index is reported up front.
    """
    diagonal = np.asarray(diagonal, dtype=float)
    bad = np.flatnonzero(~np.isfinite(diagonal) | (diagonal == 0.0))
    if bad.size:
        index = int(bad[0])
        raise ValueError(
            "jacobi_preconditioner requires finite nonzero diagonal entries; "
            f"entry {index} is {float(diagonal[index])!r}"
            + (f" ({bad.size} offending entries in total)" if bad.size > 1 else "")
        )
    inverse_diagonal = 1.0 / diagonal
    size = inverse_diagonal.size
    return LinearOperator((size, size), matvec=lambda x: inverse_diagonal * x)


@dataclass
class IterativeStats:
    """Iteration statistics of a (multi-right-hand-side) GMRES solve.

    Attributes
    ----------
    iterations_per_rhs:
        Krylov iterations taken by each right-hand side.
    mode:
        ``"column"`` (one solve per right-hand side) or ``"blocked"``
        (lockstep multi-vector iteration).
    operator_traversals:
        Number of times the solve traversed the stored operator: one
        single-vector application per column iteration in column mode, one
        multi-vector application per lockstep iteration in blocked mode.
        The blocked win is exactly ``total_iterations -
        operator_traversals``.
    """

    iterations_per_rhs: list[int]
    mode: str = "column"
    operator_traversals: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.operator_traversals < 0:
            # Column-mode default: every iteration is one full traversal.
            self.operator_traversals = int(sum(self.iterations_per_rhs))

    @property
    def total_iterations(self) -> int:
        """Total matrix-vector products across all right-hand sides."""
        return int(sum(self.iterations_per_rhs))

    @property
    def max_iterations(self) -> int:
        """Largest iteration count over the right-hand sides."""
        return int(max(self.iterations_per_rhs)) if self.iterations_per_rhs else 0


def gmres_solve(
    matvec: Callable[[np.ndarray], np.ndarray],
    rhs: np.ndarray,
    size: int,
    tolerance: float = 1e-6,
    max_iterations: int = 500,
    diagonal: np.ndarray | None = None,
    matmat: MatMat | None = None,
    block_size: int | None = None,
) -> tuple[np.ndarray, IterativeStats]:
    """Solve ``A x = b`` with GMRES, column by column or blocked.

    Parameters
    ----------
    matvec:
        The (possibly approximate/fast) matrix-vector product.
    rhs:
        Right-hand side vector or matrix (one column per conductor).
    size:
        System dimension.
    tolerance:
        Relative residual tolerance (per column, against the preconditioned
        right-hand-side norm, like scipy's ``rtol``).
    max_iterations:
        Iteration cap per right-hand side.
    diagonal:
        Optional diagonal of ``A`` used as a Jacobi preconditioner.
    matmat:
        Optional multi-vector product ``A @ X``.  When provided (and the
        right-hand side has more than one column), the solve runs in
        blocked mode: one operator traversal per lockstep iteration is
        shared by every still-active column.
    block_size:
        Columns per lockstep block.  ``None`` (default) solves all columns
        in one block; ``1`` falls back to the per-column scipy loop even
        when ``matmat`` is available; intermediate values chunk the columns.

    Returns
    -------
    (solution, stats):
        The solution with the same shape as ``rhs`` and the per-column
        iteration statistics (including the operator-traversal count).
    """
    rhs = np.asarray(rhs, dtype=float)
    single_column = rhs.ndim == 1
    columns = rhs[:, None] if single_column else rhs
    if columns.shape[0] != size:
        raise ValueError(f"rhs has {columns.shape[0]} rows, expected {size}")
    if block_size is not None and block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")

    num_columns = columns.shape[1]
    blocked = matmat is not None and num_columns > 1 and block_size != 1
    with span("solver.gmres", size=size, num_rhs=num_columns) as gmres_span:
        if not blocked:
            solution, stats = _column_gmres(
                matvec, columns, size, tolerance, max_iterations, diagonal
            )
        else:
            chunk = num_columns if block_size is None else min(int(block_size), num_columns)
            inverse_diagonal = None
            if diagonal is not None:
                jacobi_preconditioner(diagonal)  # shared validation
                inverse_diagonal = 1.0 / np.asarray(diagonal, dtype=float)
            solution = np.empty_like(columns)
            iterations: list[int] = []
            traversals = 0
            assert matmat is not None
            for start in range(0, num_columns, chunk):
                stop = min(start + chunk, num_columns)
                block, block_iterations, block_traversals = _blocked_gmres(
                    matmat,
                    columns[:, start:stop],
                    tolerance,
                    max_iterations,
                    inverse_diagonal,
                    rhs_offset=start,
                )
                solution[:, start:stop] = block
                iterations.extend(block_iterations)
                traversals += block_traversals
            stats = IterativeStats(
                iterations_per_rhs=iterations,
                mode="blocked",
                operator_traversals=traversals,
            )
        if gmres_span is not None:
            gmres_span.attributes.update(
                mode=stats.mode,
                iterations=stats.total_iterations,
                traversals=stats.operator_traversals,
            )
        _SOLVES.inc(mode=stats.mode)
        _ITERATIONS.inc(stats.total_iterations, mode=stats.mode)
        _TRAVERSALS.inc(stats.operator_traversals, mode=stats.mode)
    return (solution[:, 0] if single_column else solution), stats


# ----------------------------------------------------------------------
def _column_gmres(
    matvec: Callable[[np.ndarray], np.ndarray],
    columns: np.ndarray,
    size: int,
    tolerance: float,
    max_iterations: int,
    diagonal: np.ndarray | None,
) -> tuple[np.ndarray, IterativeStats]:
    """The historical per-column scipy GMRES loop."""
    operator = LinearOperator((size, size), matvec=matvec)
    preconditioner = jacobi_preconditioner(diagonal) if diagonal is not None else None

    solution = np.empty_like(columns)
    iterations: list[int] = []
    for column in range(columns.shape[1]):
        counter = _IterationCounter()
        x, info = gmres(
            operator,
            columns[:, column],
            rtol=tolerance,
            maxiter=max_iterations,
            M=preconditioner,
            callback=counter,
            callback_type="pr_norm",
        )
        if info < 0:
            # scipy signals illegal input or an unrecoverable breakdown with
            # a negative code — silently accepting x would return garbage.
            raise RuntimeError(
                f"GMRES failed with illegal input or breakdown "
                f"(right-hand side {column}, error code {info})"
            )
        if info > 0:
            raise RuntimeError(
                f"GMRES did not converge within {max_iterations} iterations "
                f"(right-hand side {column}, residual info {info})"
            )
        solution[:, column] = x
        iterations.append(counter.count)
    return solution, IterativeStats(iterations_per_rhs=iterations, mode="column")


class _IterationCounter:
    """Callback object counting GMRES iterations."""

    def __init__(self) -> None:
        self.count = 0

    def __call__(self, _residual_norm: float) -> None:
        self.count += 1


# ----------------------------------------------------------------------
def _blocked_gmres(
    matmat: MatMat,
    block_rhs: np.ndarray,
    tolerance: float,
    max_iterations: int,
    inverse_diagonal: np.ndarray | None,
    rhs_offset: int = 0,
) -> tuple[np.ndarray, list[int], int]:
    """Lockstep multi-right-hand-side GMRES on one column block.

    All columns share each operator traversal: iteration ``m`` applies
    ``matmat`` once to the ``(n, active)`` matrix of the columns' current
    Arnoldi vectors.  Every column owns an independent Krylov basis,
    Hessenberg matrix (kept upper-triangular through Givens rotations) and
    residual estimate, so a column that converges simply leaves the block.

    Returns ``(solution, iterations_per_column, operator_traversals)``.
    """
    n, k = block_rhs.shape
    solution = np.zeros((n, k))
    iterations = [0] * k

    def precondition(block: np.ndarray) -> np.ndarray:
        if inverse_diagonal is None:
            return block
        return block * inverse_diagonal[:, None]

    residual0 = precondition(block_rhs)
    beta = np.linalg.norm(residual0, axis=0)
    targets = tolerance * beta

    # Per-column Arnoldi state: basis vectors, rotated Hessenberg columns,
    # Givens rotations and the rotated residual vector g.
    basis: list[list[np.ndarray]] = [[] for _ in range(k)]
    hessenberg: list[list[np.ndarray]] = [[] for _ in range(k)]
    givens: list[list[tuple[float, float]]] = [[] for _ in range(k)]
    g: list[list[float]] = [[] for _ in range(k)]

    active: list[int] = []
    for j in range(k):
        if beta[j] > 0.0:
            basis[j].append(residual0[:, j] / beta[j])
            g[j].append(float(beta[j]))
            active.append(j)
        # A zero right-hand side is solved by the zero vector at no cost.

    traversals = 0
    for m in range(max_iterations):
        if not active:
            break
        block = np.column_stack([basis[j][m] for j in active])
        applied = precondition(np.asarray(matmat(block), dtype=float))
        if applied.shape != (n, len(active)):
            raise ValueError(
                f"matmat returned shape {applied.shape}, expected {(n, len(active))}"
            )
        traversals += 1
        still_active: list[int] = []
        for position, j in enumerate(active):
            w = applied[:, position].copy()
            applied_norm = float(np.linalg.norm(w))
            # Modified Gram-Schmidt against the column's basis.
            h = np.empty(m + 2)
            for i, v in enumerate(basis[j]):
                h[i] = float(v @ w)
                w -= h[i] * v
            w_norm = float(np.linalg.norm(w))
            h[m + 1] = w_norm
            # Previous rotations keep the Hessenberg column triangular.
            for i, (c, s) in enumerate(givens[j]):
                h[i], h[i + 1] = c * h[i] + s * h[i + 1], -s * h[i] + c * h[i + 1]
            denom = math.hypot(h[m], h[m + 1])
            c, s = (1.0, 0.0) if denom == 0.0 else (h[m] / denom, h[m + 1] / denom)
            givens[j].append((c, s))
            h[m], h[m + 1] = denom, 0.0
            hessenberg[j].append(h)
            g[j].append(-s * g[j][m])
            g[j][m] = c * g[j][m]
            iterations[j] = m + 1

            happy_breakdown = w_norm <= np.finfo(float).eps * applied_norm
            if abs(g[j][m + 1]) <= targets[j] or happy_breakdown:
                solution[:, j] = _assemble_solution(basis[j], hessenberg[j], g[j])
            else:
                basis[j].append(w / w_norm)
                still_active.append(j)
        active = still_active

    if active:
        residuals = ", ".join(
            f"rhs {rhs_offset + j}: |r|={abs(g[j][iterations[j]]):.3e}" for j in active
        )
        raise RuntimeError(
            f"blocked GMRES did not converge within {max_iterations} iterations "
            f"({residuals})"
        )
    return solution, iterations, traversals


def _assemble_solution(
    basis: list[np.ndarray],
    hessenberg: list[np.ndarray],
    g: list[float],
) -> np.ndarray:
    """Back-substitute the rotated least-squares system and expand in the basis."""
    m = len(hessenberg)
    y = np.zeros(m)
    for i in range(m - 1, -1, -1):
        accumulated = g[i] - sum(hessenberg[col][i] * y[col] for col in range(i + 1, m))
        diagonal = hessenberg[i][i]
        y[i] = accumulated / diagonal if diagonal != 0.0 else 0.0
    x = np.zeros_like(basis[0])
    for i in range(m):
        x += y[i] * basis[i]
    return x
