"""Krylov iterative solves for the PWC baselines.

The FASTCAP-like and pFFT baselines follow their originals and solve the
(large) piecewise-constant system with GMRES, using a fast approximate
matrix-vector product.  This module wraps scipy's GMRES with iteration
counting and a simple diagonal (panel self-term) preconditioner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy.sparse.linalg import LinearOperator, gmres

__all__ = ["IterativeStats", "jacobi_preconditioner", "gmres_solve"]


def jacobi_preconditioner(diagonal: np.ndarray) -> LinearOperator:
    """The Jacobi (diagonal-scaling) preconditioner ``M ~= diag(A)^-1``.

    Every iterative backend — the parallel Galerkin flows, the FASTCAP-like
    baseline and the compressed ``galerkin-aca`` path — builds its GMRES
    preconditioner through this one helper (directly or by passing
    ``diagonal=`` to :func:`gmres_solve`).
    """
    inverse_diagonal = 1.0 / np.asarray(diagonal, dtype=float)
    size = inverse_diagonal.size
    return LinearOperator((size, size), matvec=lambda x: inverse_diagonal * x)


@dataclass
class IterativeStats:
    """Iteration counts of a multi-right-hand-side GMRES solve."""

    iterations_per_rhs: list[int]

    @property
    def total_iterations(self) -> int:
        """Total matrix-vector products across all right-hand sides."""
        return int(sum(self.iterations_per_rhs))

    @property
    def max_iterations(self) -> int:
        """Largest iteration count over the right-hand sides."""
        return int(max(self.iterations_per_rhs)) if self.iterations_per_rhs else 0


def gmres_solve(
    matvec: Callable[[np.ndarray], np.ndarray],
    rhs: np.ndarray,
    size: int,
    tolerance: float = 1e-6,
    max_iterations: int = 500,
    diagonal: np.ndarray | None = None,
) -> tuple[np.ndarray, IterativeStats]:
    """Solve ``A x = b`` (column by column) with GMRES.

    Parameters
    ----------
    matvec:
        The (possibly approximate/fast) matrix-vector product.
    rhs:
        Right-hand side vector or matrix (one column per conductor).
    size:
        System dimension.
    tolerance:
        Relative residual tolerance.
    max_iterations:
        Iteration cap per right-hand side.
    diagonal:
        Optional diagonal of ``A`` used as a Jacobi preconditioner.

    Returns
    -------
    (solution, stats):
        The solution with the same shape as ``rhs`` and the per-column
        iteration counts.
    """
    rhs = np.asarray(rhs, dtype=float)
    single_column = rhs.ndim == 1
    columns = rhs[:, None] if single_column else rhs
    if columns.shape[0] != size:
        raise ValueError(f"rhs has {columns.shape[0]} rows, expected {size}")

    operator = LinearOperator((size, size), matvec=matvec)
    preconditioner = jacobi_preconditioner(diagonal) if diagonal is not None else None

    solution = np.empty_like(columns)
    iterations: list[int] = []
    for column in range(columns.shape[1]):
        counter = _IterationCounter()
        x, info = gmres(
            operator,
            columns[:, column],
            rtol=tolerance,
            maxiter=max_iterations,
            M=preconditioner,
            callback=counter,
            callback_type="pr_norm",
        )
        if info > 0:
            raise RuntimeError(
                f"GMRES did not converge within {max_iterations} iterations "
                f"(right-hand side {column}, residual info {info})"
            )
        solution[:, column] = x
        iterations.append(counter.count)
    stats = IterativeStats(iterations_per_rhs=iterations)
    return (solution[:, 0] if single_column else solution), stats


class _IterationCounter:
    """Callback object counting GMRES iterations."""

    def __init__(self) -> None:
        self.count = 0

    def __call__(self, _residual_norm: float) -> None:
        self.count += 1
