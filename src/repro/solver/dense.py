"""Dense direct solves of the BEM system.

The system matrix ``P`` of a Galerkin BEM with a symmetric kernel is
symmetric and, for well-posed problems, positive definite, so a Cholesky
factorisation is the natural direct method; a partial-pivoting LU is the
fallback when mild asymmetry (from quadrature of near-singular pairs) or
indefiniteness spoils the factorisation.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

from repro.obs.trace import span

__all__ = ["solve_dense", "cholesky_solve"]


def cholesky_solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve a symmetric positive definite system via Cholesky factorisation.

    Raises
    ------
    numpy.linalg.LinAlgError
        If the matrix is not positive definite.
    """
    matrix = np.asarray(matrix, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    _check_shapes(matrix, rhs)
    # Symmetrise explicitly: the assemblers produce a numerically symmetric
    # matrix but quadrature round-off can leave ~1e-14 asymmetry.
    symmetric = 0.5 * (matrix + matrix.T)
    factor = np.linalg.cholesky(symmetric)
    intermediate = linalg.solve_triangular(factor, rhs, lower=True)
    return linalg.solve_triangular(factor.T, intermediate, lower=False)


def solve_dense(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve the BEM system, preferring Cholesky and falling back to LU."""
    matrix = np.asarray(matrix, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    _check_shapes(matrix, rhs)
    with span("solver.direct", size=matrix.shape[0]):
        try:
            return cholesky_solve(matrix, rhs)
        except np.linalg.LinAlgError:
            return np.linalg.solve(matrix, rhs)


def _check_shapes(matrix: np.ndarray, rhs: np.ndarray) -> None:
    """Validate system dimensions."""
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"matrix must be square, got shape {matrix.shape}")
    if rhs.shape[0] != matrix.shape[0]:
        raise ValueError(
            f"rhs first dimension {rhs.shape[0]} does not match matrix size {matrix.shape[0]}"
        )
