"""System solving and capacitance post-processing.

With instantiable basis functions the system is small and dense, so the
solve is a direct factorisation (paper Section 3: "we will resort to the
standard direct method implemented in multithreaded linear algebra
libraries").  The matrix-free backends (compressed H-matrix, multipole
PWC, parallel Galerkin) use the Jacobi-preconditioned GMRES of
:mod:`repro.solver.iterative` instead — by default in *blocked*
multi-right-hand-side mode, where all conductor excitations iterate in
lockstep and every operator traversal is shared across the columns
(``block_size=1`` restores the historical one-solve-per-conductor loop).
Per-column iteration counts and the number of operator traversals are
reported through :class:`~repro.solver.iterative.IterativeStats`.
"""

from repro.solver.dense import solve_dense, cholesky_solve
from repro.solver.iterative import gmres_solve, jacobi_preconditioner, IterativeStats
from repro.solver.capacitance import (
    capacitance_from_solution,
    capacitance_matrix,
    CapacitanceComparison,
    compare_capacitance,
)

__all__ = [
    "solve_dense",
    "cholesky_solve",
    "gmres_solve",
    "jacobi_preconditioner",
    "IterativeStats",
    "capacitance_from_solution",
    "capacitance_matrix",
    "CapacitanceComparison",
    "compare_capacitance",
]
