"""System solving and capacitance post-processing.

With instantiable basis functions the system is small and dense, so the
solve is a direct factorisation (paper Section 3: "we will resort to the
standard direct method implemented in multithreaded linear algebra
libraries"); the PWC baselines additionally use Krylov iterative solvers.
"""

from repro.solver.dense import solve_dense, cholesky_solve
from repro.solver.iterative import gmres_solve, IterativeStats
from repro.solver.capacitance import (
    capacitance_from_solution,
    capacitance_matrix,
    CapacitanceComparison,
    compare_capacitance,
)

__all__ = [
    "solve_dense",
    "cholesky_solve",
    "gmres_solve",
    "IterativeStats",
    "capacitance_from_solution",
    "capacitance_matrix",
    "CapacitanceComparison",
    "compare_capacitance",
]
