"""Capacitance matrix computation and comparison metrics.

After the system ``P rho = Phi`` is solved, the short-circuit capacitance
matrix is ``C = Phi^T rho`` (paper Section 2.1).  The comparison helpers
implement the error metric used throughout the evaluation section: the
worst-case relative error of the capacitance entries, dominated by the
self-capacitances and the significant coupling terms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solver.dense import solve_dense

__all__ = [
    "capacitance_from_solution",
    "capacitance_matrix",
    "CapacitanceComparison",
    "compare_capacitance",
]


def capacitance_from_solution(phi: np.ndarray, rho: np.ndarray) -> np.ndarray:
    """``C = Phi^T rho``, symmetrised.

    The exact Galerkin capacitance matrix is symmetric; numerical
    asymmetry from quadrature is folded back by averaging with the
    transpose.
    """
    phi = np.asarray(phi, dtype=float)
    rho = np.asarray(rho, dtype=float)
    if phi.shape != rho.shape:
        raise ValueError(f"phi {phi.shape} and rho {rho.shape} must have identical shapes")
    capacitance = phi.T @ rho
    return 0.5 * (capacitance + capacitance.T)


def capacitance_matrix(system_matrix: np.ndarray, phi: np.ndarray) -> np.ndarray:
    """Solve ``P rho = Phi`` directly and return ``C = Phi^T rho``."""
    rho = solve_dense(system_matrix, phi)
    return capacitance_from_solution(phi, rho)


@dataclass
class CapacitanceComparison:
    """Error metrics between a computed and a reference capacitance matrix."""

    max_relative_error: float
    self_capacitance_error: float
    coupling_error: float
    reference_norm: float

    def within(self, tolerance: float) -> bool:
        """Whether the worst-case relative error is below ``tolerance``."""
        return self.max_relative_error <= tolerance


def compare_capacitance(
    computed: np.ndarray,
    reference: np.ndarray,
    significance: float = 0.05,
) -> CapacitanceComparison:
    """Compare two capacitance matrices.

    Parameters
    ----------
    computed, reference:
        Capacitance matrices of identical shape.
    significance:
        Off-diagonal (coupling) entries smaller than ``significance`` times
        the largest self-capacitance are excluded from the relative error:
        tiny couplings are irrelevant for timing/noise analysis and their
        relative error is numerically meaningless.  This mirrors standard
        extraction-accuracy reporting (and the paper's single-figure "2.8 %
        error" summary).
    """
    computed = np.asarray(computed, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if computed.shape != reference.shape:
        raise ValueError(
            f"capacitance matrices must have identical shapes, got {computed.shape} vs {reference.shape}"
        )
    diag_ref = np.diag(reference)
    scale = float(np.max(np.abs(diag_ref))) if diag_ref.size else 0.0
    if scale == 0.0:
        raise ValueError("reference capacitance matrix has a zero diagonal")

    relative = np.abs(computed - reference) / np.maximum(np.abs(reference), 1e-300)

    diag_mask = np.eye(reference.shape[0], dtype=bool)
    significant = np.abs(reference) >= significance * scale

    self_error = float(np.max(relative[diag_mask])) if np.any(diag_mask) else 0.0
    coupling_mask = significant & ~diag_mask
    coupling_error = float(np.max(relative[coupling_mask])) if np.any(coupling_mask) else 0.0
    overall_mask = diag_mask | coupling_mask
    max_error = float(np.max(relative[overall_mask]))

    return CapacitanceComparison(
        max_relative_error=max_error,
        self_capacitance_error=self_error,
        coupling_error=coupling_error,
        reference_norm=scale,
    )
